(** The Aspnes–Attiya–Censor-Hillel exact counter ([8], Section 5): a
    balanced binary tree with one single-writer leaf per process and an
    exact max register per internal node holding the sum of its subtree.

    [CounterIncrement] bumps the caller's leaf and refreshes every ancestor
    with the sum of its children's current values; since subtree sums are
    monotonically non-decreasing, writing them through max registers makes
    every node's value the true subtree sum at some point inside the
    writer's interval, which is what the monotone-circuit argument of [8]
    needs for linearizability.

    Step complexity with our [O(log v)] unbounded max registers:
    [CounterIncrement] is [O(log n * log v)] and [CounterRead] is
    [O(log v)] — the paper's quoted [O(min(log n log v, n))] /
    [O(min(log v, n))] shape, and the polylog baseline of experiment E1. *)

type t

val create : Sim.Exec.t -> ?name:string -> n:int -> unit -> t

val increment : t -> pid:int -> unit
(** In-fiber; [O(log n * log v)] steps. *)

val read : t -> pid:int -> int
(** In-fiber; [O(log v)] steps. *)

val handle : t -> Obj_intf.counter
