type node =
  | Leaf of Sim.Memory.obj_id
  | Internal of Maxreg.Bounded_maxreg.t
  | Empty

type t = {
  n : int;
  m : int;
  size : int;
  nodes : node array;
  own : int array;  (* local mirrors of the single-writer leaves *)
  mutable applied : int;  (* global increment count, bound enforcement *)
}

let create exec ?(name = "bcnt") ~n ~m () =
  if n < 1 then invalid_arg "Bounded_tree_counter.create: n < 1";
  if m < 1 then invalid_arg "Bounded_tree_counter.create: m < 1";
  let size = Zmath.pow 2 (Zmath.ceil_log2 (max 2 n)) in
  let mem = Sim.Exec.memory exec in
  let nodes =
    Array.init (2 * size) (fun i ->
        if i = 0 then Empty
        else if i < size then
          Internal
            (Maxreg.Bounded_maxreg.create exec
               ~name:(Printf.sprintf "%s.node%d" name i)
               ~n ~m:(m + 1) ())
        else if i - size < n then
          Leaf
            (Sim.Memory.alloc mem
               ~name:(Printf.sprintf "%s.leaf%d" name (i - size))
               (Sim.Memory.V_int 0))
        else Empty)
  in
  { n; m; size; nodes; own = Array.make n 0; applied = 0 }

let read_node t ~pid i =
  match t.nodes.(i) with
  | Empty -> 0
  | Leaf cell -> Sim.Api.read cell
  | Internal mr -> Maxreg.Bounded_maxreg.read mr ~pid

let increment t ~pid =
  if t.applied >= t.m then
    invalid_arg "Bounded_tree_counter.increment: bound exceeded";
  t.applied <- t.applied + 1;
  t.own.(pid) <- t.own.(pid) + 1;
  (match t.nodes.(t.size + pid) with
   | Leaf cell -> Sim.Api.write cell t.own.(pid)
   | Empty | Internal _ -> assert false);
  let rec up i =
    if i >= 1 then begin
      let sum = read_node t ~pid (2 * i) + read_node t ~pid ((2 * i) + 1) in
      (match t.nodes.(i) with
       | Internal mr -> Maxreg.Bounded_maxreg.write mr ~pid sum
       | Leaf _ | Empty -> assert false);
      up (i / 2)
    end
  in
  up ((t.size + pid) / 2)

let read t ~pid = read_node t ~pid 1

let bound t = t.m

let handle t =
  { Obj_intf.c_label = Printf.sprintf "bounded-tree-counter(m=%d)" t.m;
    c_inc = (fun ~pid -> increment t ~pid);
    c_read = (fun ~pid -> read t ~pid) }
