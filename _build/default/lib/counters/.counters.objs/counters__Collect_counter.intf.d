lib/counters/collect_counter.mli: Obj_intf Sim
