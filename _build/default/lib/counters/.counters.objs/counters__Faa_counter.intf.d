lib/counters/faa_counter.mli: Obj_intf Sim
