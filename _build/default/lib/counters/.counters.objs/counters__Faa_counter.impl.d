lib/counters/faa_counter.ml: Obj_intf Sim
