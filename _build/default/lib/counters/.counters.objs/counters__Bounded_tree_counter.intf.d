lib/counters/bounded_tree_counter.mli: Obj_intf Sim
