lib/counters/tree_counter.mli: Obj_intf Sim
