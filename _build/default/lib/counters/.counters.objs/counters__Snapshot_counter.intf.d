lib/counters/snapshot_counter.mli: Obj_intf Sim
