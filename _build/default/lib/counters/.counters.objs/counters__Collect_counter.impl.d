lib/counters/collect_counter.ml: Array Obj_intf Prims
