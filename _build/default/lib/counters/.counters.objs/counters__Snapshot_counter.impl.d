lib/counters/snapshot_counter.ml: Array Obj_intf Prims
