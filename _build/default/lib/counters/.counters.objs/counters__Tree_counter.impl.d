lib/counters/tree_counter.ml: Array Maxreg Obj_intf Printf Sim Zmath
