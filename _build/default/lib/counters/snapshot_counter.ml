type t = {
  snap : Prims.Snapshot.t;
  own : int array;  (* local mirror of the single-writer component *)
}

let create exec ?(name = "scnt") ~n () =
  { snap = Prims.Snapshot.create exec ~name ~n (); own = Array.make n 0 }

let increment t ~pid =
  t.own.(pid) <- t.own.(pid) + 1;
  Prims.Snapshot.update t.snap ~pid t.own.(pid)

let read t ~pid =
  Array.fold_left ( + ) 0 (Prims.Snapshot.scan t.snap ~pid)

let handle t =
  { Obj_intf.c_label = "snapshot-counter";
    c_inc = (fun ~pid -> increment t ~pid);
    c_read = (fun ~pid -> read t ~pid) }
