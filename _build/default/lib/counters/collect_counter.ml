type t = {
  cells : Prims.Collect.t;
  own : int array;  (* local mirror; cells are single-writer *)
}

let create exec ?(name = "cnt") ~n () =
  { cells = Prims.Collect.create exec ~name ~n (); own = Array.make n 0 }

let increment t ~pid =
  t.own.(pid) <- t.own.(pid) + 1;
  Prims.Collect.update t.cells ~pid t.own.(pid)

let read t ~pid:_ = Prims.Collect.collect_fold t.cells ~init:0 ~f:( + )

let handle t =
  { Obj_intf.c_label = "collect-counter";
    c_inc = (fun ~pid -> increment t ~pid);
    c_read = (fun ~pid -> read t ~pid) }
