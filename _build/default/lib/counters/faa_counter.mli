(** Fetch-and-add counter: one shared cell, both operations take one step.

    Fetch-and-add is neither historyless nor conditional, so none of the
    paper's lower bounds applies to it; it serves as the "ideal" reference
    point in the experiment tables (what hardware-level primitives buy). *)

type t

val create : Sim.Exec.t -> ?name:string -> unit -> t

val increment : t -> pid:int -> unit
(** In-fiber; 1 step. *)

val read : t -> pid:int -> int
(** In-fiber; 1 step. *)

val handle : t -> Obj_intf.counter
