type node =
  | Leaf of Sim.Memory.obj_id
  | Internal of Maxreg.Unbounded_maxreg.t
  | Empty  (* padding leaf when n is not a power of two; constant 0 *)

type t = {
  n : int;
  size : int;  (* number of leaf slots; a power of two; node i's children
                  are 2i and 2i+1, leaves sit at size .. 2*size-1 *)
  nodes : node array;
  own : int array;  (* local mirrors of the single-writer leaves *)
}

let create exec ?(name = "treecnt") ~n () =
  if n < 1 then invalid_arg "Tree_counter.create: n < 1";
  let size = Zmath.pow 2 (Zmath.ceil_log2 (max 2 n)) in
  let mem = Sim.Exec.memory exec in
  let nodes =
    Array.init (2 * size) (fun i ->
        if i = 0 then Empty
        else if i < size then
          Internal
            (Maxreg.Unbounded_maxreg.create exec
               ~name:(Printf.sprintf "%s.node%d" name i)
               ())
        else if i - size < n then
          Leaf
            (Sim.Memory.alloc mem
               ~name:(Printf.sprintf "%s.leaf%d" name (i - size))
               (Sim.Memory.V_int 0))
        else Empty)
  in
  { n; size; nodes; own = Array.make n 0 }

let read_node t ~pid i =
  match t.nodes.(i) with
  | Empty -> 0
  | Leaf cell -> Sim.Api.read cell
  | Internal mr -> Maxreg.Unbounded_maxreg.read mr ~pid

let increment t ~pid =
  t.own.(pid) <- t.own.(pid) + 1;
  (match t.nodes.(t.size + pid) with
   | Leaf cell -> Sim.Api.write cell t.own.(pid)
   | Empty | Internal _ -> assert false);
  let rec up i =
    if i >= 1 then begin
      let sum = read_node t ~pid (2 * i) + read_node t ~pid ((2 * i) + 1) in
      (match t.nodes.(i) with
       | Internal mr -> Maxreg.Unbounded_maxreg.write mr ~pid sum
       | Leaf _ | Empty -> assert false);
      up (i / 2)
    end
  in
  up ((t.size + pid) / 2)

let read t ~pid = read_node t ~pid 1

let handle t =
  { Obj_intf.c_label = "tree-counter";
    c_inc = (fun ~pid -> increment t ~pid);
    c_read = (fun ~pid -> read t ~pid) }
