lib/core/accuracy.ml: Zmath
