lib/core/accuracy.mli:
