lib/core/kcounter.mli: Obj_intf Sim
