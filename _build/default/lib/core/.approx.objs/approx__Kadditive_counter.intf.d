lib/core/kadditive_counter.mli: Obj_intf Sim
