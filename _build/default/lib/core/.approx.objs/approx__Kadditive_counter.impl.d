lib/core/kadditive_counter.ml: Array Obj_intf Prims Printf
