lib/core/kmaxreg.ml: Maxreg Obj_intf Printf Zmath
