lib/core/kcounter_bounded.mli: Obj_intf Sim
