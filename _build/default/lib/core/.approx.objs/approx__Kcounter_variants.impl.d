lib/core/kcounter_variants.ml: Accuracy Array Obj_intf Printf Sim
