lib/core/kcounter_bounded.ml: Array Kmaxreg Maxreg Obj_intf Printf Sim Zmath
