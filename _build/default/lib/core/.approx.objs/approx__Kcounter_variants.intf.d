lib/core/kcounter_variants.mli: Obj_intf Sim
