lib/core/kcounter.ml: Accuracy Array List Obj_intf Printf Sim
