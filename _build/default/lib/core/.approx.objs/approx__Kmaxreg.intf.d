lib/core/kmaxreg.mli: Obj_intf Sim
