lib/core/kmaxreg_unbounded.mli: Obj_intf Sim
