lib/core/kmaxreg_unbounded.ml: Maxreg Obj_intf Printf Zmath
