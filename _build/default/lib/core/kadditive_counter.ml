type t = {
  cells : Prims.Collect.t;
  threshold : int;
  announced : int array;  (* local mirror of own cell *)
  pending : int array;  (* unflushed increments, < threshold *)
}

let create exec ?(name = "kadd") ~n ~k () =
  if n < 1 then invalid_arg "Kadditive_counter.create: n < 1";
  if k < 0 then invalid_arg "Kadditive_counter.create: k < 0";
  { cells = Prims.Collect.create exec ~name ~n ();
    threshold = (k / (n + 1)) + 1;
    announced = Array.make n 0;
    pending = Array.make n 0 }

let increment t ~pid =
  t.pending.(pid) <- t.pending.(pid) + 1;
  if t.pending.(pid) = t.threshold then begin
    t.announced.(pid) <- t.announced.(pid) + t.pending.(pid);
    t.pending.(pid) <- 0;
    Prims.Collect.update t.cells ~pid t.announced.(pid)
  end

let read t ~pid:_ = Prims.Collect.collect_fold t.cells ~init:0 ~f:( + )

let flush_threshold t = t.threshold

let handle t =
  { Obj_intf.c_label = Printf.sprintf "kadditive(t=%d)" t.threshold;
    c_inc = (fun ~pid -> increment t ~pid);
    c_read = (fun ~pid -> read t ~pid) }
