(* One parameterized implementation; the three public modules instantiate
   it with a single ingredient removed each. The shared-memory layout and
   line-by-line structure mirror Kcounter (see kcounter.ml). *)

type config = {
  helping : bool;  (* CounterRead consults H (paper lines 44-55) *)
  resume_probe : bool;  (* l0 persists across announces (lines 22-24) *)
  full_scan : bool;  (* read every switch vs first/last per interval *)
  startup_fix : bool;
      (* repair the startup-corner erratum (see Startup_corrected below):
         first increments are additionally announced in per-process bits,
         and reads that would return ReturnValue(0,0) collect those bits *)
}

type local = {
  mutable lcounter : int;
  mutable limit_exp : int;
  mutable limit : int;
  mutable sn : int;
  mutable l0 : int;
  mutable last : int;
  mutable p : int;
  mutable q : int;
}

type t = {
  n : int;
  k : int;
  config : config;
  switches : Sim.Memory.region;
  h : Sim.Memory.obj_id array;
  first_inc : Sim.Memory.obj_id array;  (* used when startup_fix *)
  started : bool array;  (* local: has pid announced its first inc? *)
  locals : local array;
  mem : Sim.Memory.t;
}

let create_impl config exec ?(name = "kcnt") ~n ~k () =
  if n < 1 then invalid_arg "Kcounter_variants.create: n < 1";
  if k < 2 then invalid_arg "Kcounter_variants.create: k < 2";
  let mem = Sim.Exec.memory exec in
  { n;
    k;
    config;
    switches =
      Sim.Memory.region mem ~name:(name ^ ".switch")
        ~default:(Sim.Memory.V_int 0) ();
    h =
      Sim.Memory.alloc_many mem ~name:(name ^ ".H") n
        (Sim.Memory.V_pair (0, 0));
    first_inc =
      (if config.startup_fix then
         Sim.Memory.alloc_many mem ~name:(name ^ ".first") n
           (Sim.Memory.V_int 0)
       else [||]);
    started = Array.make n false;
    locals =
      Array.init n (fun _ ->
          { lcounter = 0;
            limit_exp = 0;
            limit = 1;
            sn = 0;
            l0 = 1;
            last = 0;
            p = 0;
            q = 0 });
    mem }

let switch t j = Sim.Memory.region_cell t.mem t.switches j

let increment_impl t ~pid =
  let s = t.locals.(pid) in
  if t.config.startup_fix && not t.started.(pid) then begin
    t.started.(pid) <- true;
    Sim.Api.write t.first_inc.(pid) 1
  end;
  s.lcounter <- s.lcounter + 1;
  if s.lcounter = s.limit then begin
    let j = s.limit_exp in
    if j > 0 then begin
      let exhausted = ref true in
      let start = if t.config.resume_probe then s.l0 else 1 in
      let l = ref (((j - 1) * t.k) + start) in
      while !exhausted && !l <= j * t.k do
        if Sim.Api.test_and_set (switch t !l) = 0 then begin
          s.sn <- s.sn + 1;
          Sim.Api.write_pair t.h.(pid) (!l, s.sn);
          s.lcounter <- 0;
          s.l0 <- 1 + (!l mod t.k);
          if !l = j * t.k then begin
            s.limit_exp <- s.limit_exp + 1;
            s.limit <- t.k * s.limit
          end;
          exhausted := false
        end
        else incr l
      done;
      if !exhausted then begin
        s.l0 <- 1;
        s.limit_exp <- s.limit_exp + 1;
        s.limit <- t.k * s.limit
      end
    end
    else begin
      if Sim.Api.test_and_set (switch t 0) = 0 then s.lcounter <- 0;
      s.limit_exp <- s.limit_exp + 1;
      s.limit <- t.k * s.limit
    end
  end

let return_value t ~p ~q = Accuracy.return_value ~k:t.k ~p ~q

exception Helped of int

let read_impl t ~pid =
  let s = t.locals.(pid) in
  let c = ref 0 in
  let help = Array.make t.n 0 in
  try
    while Sim.Api.read (switch t s.last) <> 0 do
      s.p <- s.last mod t.k;
      s.q <- s.last / t.k;
      if t.config.full_scan then s.last <- s.last + 1
      else if s.last mod t.k = 0 then s.last <- s.last + 1
      else s.last <- s.last + t.k - 1;
      incr c;
      if t.config.helping && !c mod t.n = 0 then
        if !c = t.n then
          for j = 0 to t.n - 1 do
            let _, sn = Sim.Api.read_pair t.h.(j) in
            help.(j) <- sn
          done
        else
          for j = 0 to t.n - 1 do
            let v, sn = Sim.Api.read_pair t.h.(j) in
            if sn - help.(j) >= 2 then
              raise (Helped (return_value t ~p:(v mod t.k) ~q:(v / t.k)))
          done
    done;
    if s.last = 0 then 0
    else if t.config.startup_fix && s.p = 0 && s.q = 0 then begin
      (* Startup corner: only switch_0 is known set. ReturnValue(0,0) = k
         cannot cover the up to n(k-1) increments parked in local
         counters; instead count the processes that started incrementing.
         With c bits seen set: the true count v satisfies c <= v (each
         started process contributed at least one increment, counting
         pending first increments as linearized before us) and
         v <= a*k <= c*k at the collect's start (each started process
         hides at most k-1 beyond its first), so k*c is within
         [v/k, v*k] for any n and k. *)
      let c = ref 0 in
      for j = 0 to t.n - 1 do
        c := !c + Sim.Api.read t.first_inc.(j)
      done;
      t.k * max 1 !c
    end
    else return_value t ~p:s.p ~q:s.q
  with Helped v -> v

let handle_impl variant t =
  { Obj_intf.c_label = Printf.sprintf "kcounter/%s(k=%d)" variant t.k;
    c_inc = (fun ~pid -> increment_impl t ~pid);
    c_read = (fun ~pid -> read_impl t ~pid) }

module No_helping = struct
  type nonrec t = t

  let config =
    { helping = false; resume_probe = true; full_scan = false;
      startup_fix = false }
  let create exec ?name ~n ~k () = create_impl config exec ?name ~n ~k ()
  let increment = increment_impl
  let read = read_impl
  let handle = handle_impl "no-helping"
end

module No_probe_resume = struct
  type nonrec t = t

  let config =
    { helping = true; resume_probe = false; full_scan = false;
      startup_fix = false }
  let create exec ?name ~n ~k () = create_impl config exec ?name ~n ~k ()
  let increment = increment_impl
  let read = read_impl
  let handle = handle_impl "no-probe-resume"
end

module Full_scan_read = struct
  type nonrec t = t

  let config =
    { helping = true; resume_probe = true; full_scan = true;
      startup_fix = false }

  let create exec ?name ~n ~k () = create_impl config exec ?name ~n ~k ()
  let increment = increment_impl
  let read = read_impl
  let handle = handle_impl "full-scan-read"
end

module Startup_corrected = struct
  type nonrec t = t

  let config =
    { helping = true; resume_probe = true; full_scan = false;
      startup_fix = true }

  let create exec ?name ~n ~k () = create_impl config exec ?name ~n ~k ()
  let increment = increment_impl
  let read = read_impl
  let handle = handle_impl "startup-corrected"
end
