(** Ablation variants of Algorithm 1, for quantifying its design choices
    (experiment E9 in bench/exp_ablation.ml).

    Three single-ingredient removals:

    - {!No_helping}: [CounterRead] scans switches but never consults the
      helping array [H]. Reads lose wait-freedom: with concurrent
      incrementers that keep the switch frontier ahead of the scan, a read
      can take unboundedly many steps (Lemma III.1 fails). The variant
      demonstrates {e why} lines 44-55 exist.

    - {!No_probe_resume}: the persistent probe cursor [l0] is always reset
      to 1, so a process re-probes its interval from the beginning after
      every successful announce. Increments stay wait-free and accuracy is
      unaffected, but an increment can pay up to [k] extra failed
      test&sets per interval, inflating the amortized constant
      (the [l_0] bookkeeping of lines 22-24 is what Lemma III.8's
      [2(i_p+1)k] accounting relies on).

    - {!Full_scan_read}: [CounterRead] visits {e every} switch instead of
      only the first and last of each interval. Accuracy is unchanged
      (it sees at least as much), but a read costs [Theta(k)] per interval
      instead of [O(1)], breaking the [4(i+2)] read accounting in
      Lemma III.8.

    All variants share {!Approx.Kcounter}'s shared-memory layout and are
    linearizable k-multiplicative counters whenever the original is (the
    removals only affect liveness or step complexity, except where noted).
*)

module No_helping : sig
  type t

  val create : Sim.Exec.t -> ?name:string -> n:int -> k:int -> unit -> t

  val increment : t -> pid:int -> unit
  (** Identical to Algorithm 1's. *)

  val read : t -> pid:int -> int
  (** Switch scan only; {b not wait-free} under concurrent increments. *)

  val handle : t -> Obj_intf.counter
end

module No_probe_resume : sig
  type t

  val create : Sim.Exec.t -> ?name:string -> n:int -> k:int -> unit -> t
  val increment : t -> pid:int -> unit
  val read : t -> pid:int -> int
  val handle : t -> Obj_intf.counter
end

module Full_scan_read : sig
  type t

  val create : Sim.Exec.t -> ?name:string -> n:int -> k:int -> unit -> t
  val increment : t -> pid:int -> unit
  val read : t -> pid:int -> int
  val handle : t -> Obj_intf.counter
end

(** {2 Erratum repair}

    This reproduction found a startup-corner gap in the paper's
    Lemma III.5 / Theorem III.9 (see EXPERIMENTS.md, "Erratum"): while only
    [switch_0] is set, up to [1 + n(k-1)] increments can be parked in local
    counters, yet a read that saw [switch_0 = 1, switch_1 = 0] must return
    [ReturnValue(0,0) = k]. Since any single return value [x] needs
    [(1 + n(k-1))/k <= x <= k] — an empty interval for [n > k + 1] — no
    reader-side constant can repair it: the reader needs more information.

    {!Startup_corrected} supplies that information: each process announces
    its {e first} increment in a dedicated single-writer bit (one extra
    step, once per process), and a read that would land in the corner
    collects the [n] bits and returns [k * c] where [c] is the number of
    set bits. Accuracy: each of the [c] started processes contributed at
    least 1 increment ([v >= c], counting pending first increments as
    linearized before the read), and every started process hides at most
    [k - 1] increments beyond its announced first ([v <= c_end * k]),
    so [v/k <= k*c <= v*k] holds for {e every} [n] and [k >= 1].

    Cost: corner reads pay an extra [n] steps; once [switch_1] is set the
    algorithm is byte-for-byte the paper's, so the constant-amortized bound
    of Theorem III.9 holds for executions that leave the startup regime
    (equivalently, amortized complexity degrades to the exact counter's
    [O(n)] only while the count is below [k^2] — which is also exactly
    where approximate reads provably cannot be cheaper). *)

module Startup_corrected : sig
  type t

  val create : Sim.Exec.t -> ?name:string -> n:int -> k:int -> unit -> t
  val increment : t -> pid:int -> unit
  val read : t -> pid:int -> int
  val handle : t -> Obj_intf.counter
end
