let valid_k ~k ~n = k >= 1 && k * k >= n

let within ~k ~exact x = Zmath.within_k ~k ~exact x

let u_min ~k ~p ~q =
  1 + Zmath.geometric_sum ~base:k ~lo:2 ~hi:(q + 1) + (p * Zmath.pow k (q + 1))

let u_max ~k ~n ~p ~q =
  1
  + Zmath.geometric_sum ~base:k ~lo:2 ~hi:(q + 1)
  + (p * (k - 1) * Zmath.pow k (q + 1))
  + (n * (Zmath.pow k (q + 1) - 1))

let return_value ~k ~p ~q =
  match Zmath.mul_opt k (u_min ~k ~p ~q) with
  | Some v -> v
  | None -> raise Zmath.Overflow

let increments_to_set ~k j =
  if j < 0 then invalid_arg "Accuracy.increments_to_set: negative index";
  if j = 0 then 1 else Zmath.pow k (((j - 1) / k) + 1)
