(** A read-optimized m-bounded k-multiplicative-accurate counter — an
    exploration of the paper's open question (Section VI: "the maximum
    improvement in the worst case step complexity of the bounded variant
    of k-multiplicative-accurate counters remains an open question").

    Construction: the AACH exact tree counter over the processes, except
    that the {e root} is Algorithm 2's k-multiplicative-accurate max
    register instead of an exact one. Increments refresh their leaf-to-root
    path with exact subtree sums; the root stores only the base-k magnitude
    of the total.

    - [CounterRead] costs one Algorithm-2 read:
      [O(min(log2 log_k m, n))] worst case — {e matching} Theorem V.4's
      lower bound [Omega(min(log2 log_k m, n))], so reads are worst-case
      optimal for this object class.
    - [CounterIncrement] costs [O(log n * min(log m, n))] worst case (the
      exact inner path) plus one Algorithm-2 write; whether increments can
      also be made exponentially cheap is exactly the open question, which
      this construction does not settle.

    Linearizability follows from the monotone-composition argument: the
    inner tree makes the root's input the true total at some point in each
    increment (AACH), and Algorithm 2's register relaxes only the read
    value, within [v < x <= v*k]. *)

type t

val create : Sim.Exec.t -> ?name:string -> n:int -> m:int -> k:int -> unit -> t
(** An m-bounded counter: at most [m] increments may be applied.
    @raise Invalid_argument if [n < 1], [m < 1] or [k < 2]. *)

val increment : t -> pid:int -> unit
(** In-fiber. @raise Invalid_argument after [m] increments. *)

val read : t -> pid:int -> int
(** In-fiber; [O(min(log2 log_k m, n))] steps. Returns 0 or a power
    of [k]. *)

val bound : t -> int
val k : t -> int

val handle : t -> Obj_intf.counter
