(** The k-multiplicative accuracy relation and the closed-form quantities of
    Algorithm 1's analysis (Claim III.6), shared by the implementation, the
    tests and the experiments. *)

val valid_k : k:int -> n:int -> bool
(** Whether [k] meets Algorithm 1's accuracy precondition [k >= sqrt n]
    (Theorem III.9). The implementation itself only requires [k >= 2]. *)

val within : k:int -> exact:int -> int -> bool
(** [within ~k ~exact x] is the k-multiplicative-accurate read condition
    [exact / k <= x <= exact * k] (rational comparison). *)

val return_value : k:int -> p:int -> q:int -> int
(** The value returned by Algorithm 1's [ReturnValue(p, q)] (lines 30-34):
    [k * (1 + p*k^(q+1) + sum over l in 1..q of k^(l+1))].
    @raise Zmath.Overflow if the value does not fit in an [int]. *)

val u_min : k:int -> p:int -> q:int -> int
(** Claim III.6's lower bound on the number of increments linearized before
    a read returning [ReturnValue(p, q)]:
    [1 + sum over l in 1..q of k^(l+1) + p*k^(q+1)]. *)

val u_max : k:int -> n:int -> p:int -> q:int -> int
(** Claim III.6's upper bound:
    [1 + sum over l in 1..q of k^(l+1) + p*(k-1)*k^(q+1) + n*(k^(q+1)-1)]. *)

val increments_to_set : k:int -> int -> int
(** [increments_to_set ~k j] is the number of [CounterIncrement] instances a
    single process must perform between successful switch probes in order to
    attempt [switch_j]: 1 for [j = 0], and [k^(q+1)] for
    [j] in the interval [qk+1 .. (q+1)k]. *)
