type t = { m : int; k : int; inner : Maxreg.Bounded_maxreg.t }

let create exec ?(name = "kmax") ~n ~m ~k () =
  if k < 2 then invalid_arg "Kmaxreg.create: k < 2";
  if m < 2 then invalid_arg "Kmaxreg.create: m < 2";
  if n < 1 then invalid_arg "Kmaxreg.create: n < 1";
  (* M stores indices 0 .. floor(log_k (m-1)) + 1. *)
  let inner_bound = Zmath.floor_log ~base:k (m - 1) + 2 in
  { m; k; inner = Maxreg.Bounded_maxreg.create exec ~name ~n ~m:inner_bound () }

let write t ~pid v =
  if v < 0 || v >= t.m then invalid_arg "Kmaxreg.write: value out of range";
  if v > 0 then
    (* lines 8-9: index of the bit left of v's base-k MSB *)
    Maxreg.Bounded_maxreg.write t.inner ~pid (Zmath.floor_log ~base:t.k v + 1)

let read t ~pid =
  (* lines 2-5 *)
  match Maxreg.Bounded_maxreg.read t.inner ~pid with
  | 0 -> 0
  | p -> Zmath.pow t.k p

let bound t = t.m
let k t = t.k

let handle t =
  { Obj_intf.mr_label = Printf.sprintf "kmaxreg(k=%d)" t.k;
    mr_write = (fun ~pid v -> write t ~pid v);
    mr_read = (fun ~pid -> read t ~pid) }
