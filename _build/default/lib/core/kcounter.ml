(* Persistent local state of process [i] (paper lines 4-9). [p] and [q] are
   the read-side decomposition of the last set switch seen (implicitly
   persistent in the paper's pseudocode; see DESIGN.md). *)
type local = {
  mutable lcounter : int;  (* unannounced increments *)
  mutable limit_exp : int;  (* j with limit = k^j *)
  mutable limit : int;  (* announce threshold, k^limit_exp *)
  mutable sn : int;  (* switches set so far by this process *)
  mutable l0 : int;  (* 1-based probe start within the current interval *)
  mutable last : int;  (* read-side scan position *)
  mutable p : int;  (* last mod k of the last set switch seen *)
  mutable q : int;  (* last / k of the last set switch seen *)
}

type t = {
  n : int;
  k : int;
  switches : Sim.Memory.region;
  h : Sim.Memory.obj_id array;  (* helping array H *)
  locals : local array;
  mem : Sim.Memory.t;
}

let create exec ?(name = "kcnt") ~n ~k () =
  if n < 1 then invalid_arg "Kcounter.create: n < 1";
  if k < 2 then invalid_arg "Kcounter.create: k < 2";
  let mem = Sim.Exec.memory exec in
  { n;
    k;
    switches =
      Sim.Memory.region mem ~name:(name ^ ".switch")
        ~default:(Sim.Memory.V_int 0) ();
    h =
      Sim.Memory.alloc_many mem ~name:(name ^ ".H") n
        (Sim.Memory.V_pair (0, 0));
    locals =
      Array.init n (fun _ ->
          { lcounter = 0;
            limit_exp = 0;
            limit = 1;
            sn = 0;
            l0 = 1;
            last = 0;
            p = 0;
            q = 0 });
    mem }

let k t = t.k
let n t = t.n

let switch t j = Sim.Memory.region_cell t.mem t.switches j

(* CounterIncrement, paper lines 10-28. *)
let increment t ~pid =
  let s = t.locals.(pid) in
  s.lcounter <- s.lcounter + 1;
  if s.lcounter = s.limit then begin
    let j = s.limit_exp in
    (* lines 13-24: probe the interval [(j-1)k + l0 .. jk] *)
    if j > 0 then begin
      let exhausted = ref true in
      let l = ref (((j - 1) * t.k) + s.l0) in
      while !exhausted && !l <= j * t.k do
        if Sim.Api.test_and_set (switch t !l) = 0 then begin
          s.sn <- s.sn + 1;
          Sim.Api.write_pair t.h.(pid) (!l, s.sn);
          s.lcounter <- 0;
          s.l0 <- 1 + (!l mod t.k);
          (* line 20-21: the interval is exhausted iff we just set its last
             switch; only then does the threshold grow. *)
          if !l = j * t.k then begin
            s.limit_exp <- s.limit_exp + 1;
            s.limit <- t.k * s.limit
          end;
          exhausted := false
        end
        else incr l
      done;
      if !exhausted then begin
        (* line 24 + 28: every switch of the interval was already set. *)
        s.l0 <- 1;
        s.limit_exp <- s.limit_exp + 1;
        s.limit <- t.k * s.limit
      end
    end
    else begin
      (* lines 25-28: first announcement targets switch_0. The paper does
         not publish this announcement in H (helping only ever adopts
         interval switches). *)
      if Sim.Api.test_and_set (switch t 0) = 0 then s.lcounter <- 0;
      s.limit_exp <- s.limit_exp + 1;
      s.limit <- t.k * s.limit
    end
  end

(* ReturnValue(p, q), paper lines 30-34. *)
let return_value t ~p ~q = Accuracy.return_value ~k:t.k ~p ~q

exception Helped of int

(* CounterRead, paper lines 35-58. *)
let read t ~pid =
  let s = t.locals.(pid) in
  let c = ref 0 in
  let help = Array.make t.n 0 in
  try
    while Sim.Api.read (switch t s.last) <> 0 do
      s.p <- s.last mod t.k;
      s.q <- s.last / t.k;
      (* lines 40-43: hop between first and last switch of each interval *)
      if s.last mod t.k = 0 then s.last <- s.last + 1
      else s.last <- s.last + t.k - 1;
      incr c;
      if !c mod t.n = 0 then
        if !c = t.n then
          (* lines 46-48: first pass only records sequence numbers *)
          for j = 0 to t.n - 1 do
            let _, sn = Sim.Api.read_pair t.h.(j) in
            help.(j) <- sn
          done
        else
          (* lines 49-55: a process whose sn advanced by >= 2 set a switch
             entirely within our interval; adopt its announcement. *)
          for j = 0 to t.n - 1 do
            let v, sn = Sim.Api.read_pair t.h.(j) in
            if sn - help.(j) >= 2 then
              raise (Helped (return_value t ~p:(v mod t.k) ~q:(v / t.k)))
          done
    done;
    (* lines 56-58 *)
    if s.last = 0 then 0 else return_value t ~p:s.p ~q:s.q
  with Helped v -> v

let switch_states t =
  Sim.Memory.region_cells_allocated t.mem t.switches
  |> List.map (fun (i, id) -> (i, Sim.Memory.int_exn (Sim.Memory.peek t.mem id)))

let local_pending t ~pid = t.locals.(pid).lcounter

let handle t =
  { Obj_intf.c_label = Printf.sprintf "kcounter(k=%d)" t.k;
    c_inc = (fun ~pid -> increment t ~pid);
    c_read = (fun ~pid -> read t ~pid) }
