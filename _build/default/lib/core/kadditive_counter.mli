(** A deterministic k-additive-accurate counter — the additive relaxation
    the paper contrasts with in Section I-A (Aspnes et al. [8] prove an
    [Omega(min(n-1, log m - log k))] worst-case lower bound for it and give
    no matching upper bound; this is the natural flush-batching upper
    construction).

    A [CounterRead] may return any [x] with [|x - v| <= k], where [v] is
    the number of increments linearized before it.

    Construction: process [p] accumulates increments locally and publishes
    its total to its single-writer cell once [floor(k/(n+1)) + 1] unflushed
    increments accumulate; a read collects and sums all cells. At any time
    every process hides at most [floor(k/(n+1))] increments and the collect
    itself is accurate to one flush batch, so the total error is at most
    [(n+1) * floor(k/(n+1)) <= k].

    Step complexity: [CounterRead] is [n] steps;
    [CounterIncrement] is 1 step every [floor(k/(n+1)) + 1] calls —
    amortized [~(n+1)/k]. For [k >= n] increments are almost always free,
    mirroring (in the additive world) what Algorithm 1 achieves
    multiplicatively. With [k = 0] this degenerates to the exact collect
    counter. *)

type t

val create : Sim.Exec.t -> ?name:string -> n:int -> k:int -> unit -> t
(** @raise Invalid_argument if [n < 1] or [k < 0]. *)

val increment : t -> pid:int -> unit
(** In-fiber; 0 or 1 steps. *)

val read : t -> pid:int -> int
(** In-fiber; [n] steps. *)

val flush_threshold : t -> int
(** The batch size [floor(k/(n+1)) + 1] (exposed for tests). *)

val handle : t -> Obj_intf.counter
