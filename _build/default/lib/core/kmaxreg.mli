(** Algorithm 2: the wait-free linearizable k-multiplicative-accurate
    m-bounded max register (Section IV).

    [Write(v)] stores [floor(log_k v) + 1] — the index of the bit to the
    left of [v]'s most significant base-k digit — into an {e exact} bounded
    max register [M] of bound [floor(log_k (m-1)) + 2]; [Read] returns 0 if
    [M] holds 0 and [k^p] when it holds [p]. Since the true maximum [v]
    then lies in [[k^(p-1), k^p - 1]], the result satisfies
    [v < k^p <= v*k] (Lemma IV.1).

    Worst-case step complexity: one operation on [M], i.e.
    [O(min(log2 log_k m, n))] (Theorem IV.2) — matching the lower bound of
    Theorem V.2 and exponentially better than the exact register's
    [Theta(log m)]. *)

type t

val create : Sim.Exec.t -> ?name:string -> n:int -> m:int -> k:int -> unit -> t
(** Build phase only.
    @raise Invalid_argument if [k < 2], [m < 2] or [n < 1]. *)

val write : t -> pid:int -> int -> unit
(** In-fiber. @raise Invalid_argument if the value is outside
    [0 .. m-1]. Writing 0 is a no-op (the register starts at 0). *)

val read : t -> pid:int -> int
(** In-fiber. The result is 0 or a power of [k]; it can exceed [m - 1]
    (the relaxed specification only requires [x <= v*k]). *)

val bound : t -> int
val k : t -> int

val handle : t -> Obj_intf.max_register
