(** The unbounded k-multiplicative-accurate max register the paper sketches
    in Section I-B: Algorithm 2's recipe "plugged into" an unbounded exact
    max register.

    [Write(v)] stores [floor(log_k v) + 1] into an {!Maxreg.Unbounded_maxreg}
    (our stand-in for the Baig et al. [9] object, see DESIGN.md); [Read]
    maps the stored index [p] back to [k^p]. Both operations cost
    [O(log2 log_k v)] steps — sub-logarithmic in the value, the shape the
    paper claims for the amortized complexity of the plug-in construction. *)

type t

val create : Sim.Exec.t -> ?name:string -> k:int -> unit -> t
(** Build phase only. @raise Invalid_argument if [k < 2]. *)

val write : t -> pid:int -> int -> unit
(** In-fiber. @raise Invalid_argument on negative values; values up to
    [2^61 - 1] are supported. Writing 0 is a no-op. *)

val read : t -> pid:int -> int
(** In-fiber. Returns 0 or a power of [k]. *)

val k : t -> int

val handle : t -> Obj_intf.max_register
