(** Algorithm 1: the wait-free linearizable unbounded
    k-multiplicative-accurate counter (Section III).

    Shared state is an unbounded sequence of test&set bits
    [switch_0, switch_1, ...] and a helping array [H] of [n] atomic
    [(val, sn)] pairs. Each process counts its increments locally
    ([lcounter]); on reaching its threshold [limit = k^j] it probes the
    switches of interval [(j-1)k+1 .. jk] (or [switch_0] when [j = 0]) with
    test&set, announcing [k^j] increments when a probe succeeds. Reads scan
    the first and last switch of each interval from a persistent position
    [last] and derive the return value from the last set switch seen; every
    [n] loop iterations they rescan [H] and return through the helping
    mechanism once some process's sequence number advanced by at least 2
    within the read's interval.

    Guarantees (Theorem III.9): wait-free; linearizable with every read [x]
    of a true count [v] satisfying [v/k <= x <= v*k] provided
    [k >= sqrt n]; constant amortized step complexity.

    The implementation follows the paper's pseudocode line by line, with
    the two reconstructions documented in DESIGN.md: [limit] is multiplied
    by [k] exactly when a probe interval is exhausted (successfully at its
    last switch, or unsuccessfully past it, or at [switch_0]), and the
    read-side [(p, q)] pair is persistent alongside [last]. *)

type t

val create : Sim.Exec.t -> ?name:string -> n:int -> k:int -> unit -> t
(** Build phase only.
    @raise Invalid_argument if [k < 2] or [n < 1]. The accuracy guarantee
    additionally needs [k >= sqrt n] ({!Accuracy.valid_k}), which is {e not}
    enforced — experiment E7 exercises the failure regime on purpose. *)

val increment : t -> pid:int -> unit
(** [CounterIncrement] (lines 10-28). In-fiber; at most [k + 1] steps, 0
    steps while below the local threshold. *)

val read : t -> pid:int -> int
(** [CounterRead] (lines 35-58). In-fiber; wait-free via the helping
    mechanism. *)

val k : t -> int
val n : t -> int

val switch_states : t -> (int * int) list
(** Post-mortem dump of the materialised switches as [(index, bit)] pairs,
    sorted by index — used by the Figure 1 reproduction and the switch-order
    property tests. Not a simulated operation (no steps). *)

val local_pending : t -> pid:int -> int
(** [pid]'s unannounced local increment count ([lcounter]); test hook. *)

val handle : t -> Obj_intf.counter
