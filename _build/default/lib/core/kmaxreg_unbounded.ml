type t = { k : int; inner : Maxreg.Unbounded_maxreg.t }

let create exec ?(name = "ukmax") ~k () =
  if k < 2 then invalid_arg "Kmaxreg_unbounded.create: k < 2";
  { k; inner = Maxreg.Unbounded_maxreg.create exec ~name () }

let write t ~pid v =
  if v < 0 then invalid_arg "Kmaxreg_unbounded.write: negative value";
  if v > 0 then
    Maxreg.Unbounded_maxreg.write t.inner ~pid (Zmath.floor_log ~base:t.k v + 1)

let read t ~pid =
  match Maxreg.Unbounded_maxreg.read t.inner ~pid with
  | 0 -> 0
  | p -> Zmath.pow t.k p

let k t = t.k

let handle t =
  { Obj_intf.mr_label = Printf.sprintf "ukmaxreg(k=%d)" t.k;
    mr_write = (fun ~pid v -> write t ~pid v);
    mr_read = (fun ~pid -> read t ~pid) }
