type result = {
  n : int;
  k : int;
  total_events : int;
  awareness_sizes : int array;
  top_half_min : int;
  events_bound : float;
  awareness_bound : float;
}

let run ~make ~n ~k ~policy =
  let exec = Sim.Exec.create ~track_awareness:true ~n () in
  let counter = make exec ~n in
  let script = Workload.Script.inc_then_read ~n in
  let programs = Workload.Script.counter_programs counter script in
  let outcome = Sim.Exec.run exec ~programs ~policy () in
  let aware =
    match Sim.Exec.awareness exec with
    | Some aw -> aw
    | None -> assert false
  in
  let sizes = Sim.Awareness.sizes aware in
  let sorted = Array.copy sizes in
  Array.sort (fun a b -> compare b a) sorted;
  (* the floor(n/2)-th largest awareness-set size *)
  let top_half_min = sorted.(max 0 ((n / 2) - 1)) in
  let ratio = float_of_int n /. float_of_int (k * k) in
  { n;
    k;
    total_events = outcome.steps_total;
    awareness_sizes = sizes;
    top_half_min;
    events_bound =
      (if ratio > 1.0 then float_of_int n *. (Float.log ratio /. Float.log 2.0)
       else 0.0);
    awareness_bound = ratio /. 2.0 }
