(** Constructive perturbation experiments for the worst-case lower bounds of
    Section V (Lemmas V.1 and V.3, Theorems V.2 and V.4).

    The L-perturbable argument of [5] builds executions
    [alpha_r lambda_r] in which a reader's solo run is perturbed [r] times;
    [5, Theorem 1] then yields that some operation accesses
    [Omega(min(log2 L, n))] distinct base objects.

    This module realises the perturbing {e write schedules} of the paper's
    lemmas against concrete implementations and measures both sides:

    - the number of perturbation rounds [L] achieved before the bound [m]
      is exhausted — Lemma V.1 predicts [Theta(log_k m)] for max registers,
      Lemma V.3 the same for counters (via the increment batches
      [I_r = (k^2 - 1) * sum I_j + r]);
    - the number of distinct base objects the reader's solo operation
      accesses after round [r], which must be at least [log2 r] for any
      obstruction-free implementation from historyless primitives.

    Simplification relative to [5, Definition 2] (documented in DESIGN.md):
    each round's perturbing operations run to completion instead of being
    held as pending events in [lambda]. For the implementations in this
    repository a completed write/batch provably changes the reader's solo
    response (the paper's choice [v_r = k^2 v_{r-1} + 1] forces
    [new response >= v_r / k > k * v_{r-1} >= old response]), so every
    round is a genuine perturbation; the pending-event machinery of [5] is
    only needed for implementations that delay visibility, which
    obstruction-freedom cannot rely on. *)

type round = {
  index : int;  (** 1-based perturbation round *)
  input : int;
      (** the value written ([v_r], max register) or the batch size
          ([I_r], counter) in this round *)
  response : int;  (** the reader's solo response after the round *)
  distinct_objects : int;
      (** distinct base objects accessed by the reader's solo operation *)
  read_steps : int;  (** steps of the reader's solo operation *)
}

val perturb_maxreg :
  make:(Sim.Exec.t -> n:int -> Obj_intf.max_register) ->
  m:int ->
  k:int ->
  round list
(** Lemma V.1's schedule: round [r] writes [v_r = k^2 * v_{r-1} + 1]
    (with [v_0 = 0]) while [v_r <= m - 1]. Each round is replayed from
    scratch: writers perform their writes one after another, then the
    reader runs a solo read. Every round's response strictly exceeds the
    previous one (verified by an assertion). *)

val perturb_counter :
  make:(Sim.Exec.t -> n:int -> Obj_intf.counter) ->
  m:int ->
  k:int ->
  round list
(** Lemma V.3's schedule: round [r] performs
    [I_r = (k^2 - 1) * sum_{j<r} I_j + r] increments (with [I_1 = 1])
    while the running total stays [<= m]. The reader's solo read after
    round [r] must exceed [k * sum_{j<r} I_j] (verified by an
    assertion). *)

val rounds_bound_maxreg : m:int -> k:int -> int
(** The analytic round count of Lemma V.1: the largest [r] with
    [v_r <= m - 1]. *)

val rounds_bound_counter : m:int -> k:int -> int
(** The analytic round count of Lemma V.3: the largest [r] with
    [sum_{j<=r} I_j <= m]. *)
