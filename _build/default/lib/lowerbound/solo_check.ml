type outcome =
  | Terminated
  | Exhausted of int

let run ~make ~n ~prefix_seed ~prefix_len ~solo_pid ~budget =
  let exec = Sim.Exec.create ~n () in
  let programs = make exec ~n in
  let rng = Workload.Rng.create ~seed:prefix_seed in
  let prefix = Array.init prefix_len (fun _ -> Workload.Rng.int rng n) in
  (* The prefix consumes at most [prefix_len] steps (one per scheduling
     turn); everything beyond that is the solo phase. Wait-freedom implies
     the solo process finishes its whole remaining program within a bound
     depending only on its program, so [budget] solo steps must suffice. *)
  let outcome =
    Sim.Exec.run exec ~programs
      ~policy:(Sim.Schedule.Seq
                 [ Sim.Schedule.Script prefix; Sim.Schedule.Solo solo_pid ])
      ~max_steps:(prefix_len + budget) ()
  in
  if outcome.completed.(solo_pid) then Terminated
  else Exhausted outcome.steps_total
