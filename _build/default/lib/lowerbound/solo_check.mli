(** Solo-termination (obstruction-freedom) checker.

    The paper's lower bounds assume solo-terminating implementations: a
    process finishes its operation if it runs alone for long enough
    (Section II). This harness checks the property experimentally: drive a
    random prefix of an execution, then freeze every process except one and
    require that process to complete a pending operation (or its whole
    program) within a step budget.

    All objects in this repository are wait-free, so they must pass for
    every prefix; the harness exists to property-test that claim (and to
    catch liveness regressions such as unbounded retry loops). *)

type outcome =
  | Terminated  (** the solo process finished its whole remaining program *)
  | Exhausted of int
      (** total steps taken when the budget ran out with the solo process
          still pending *)

val run :
  make:(Sim.Exec.t -> n:int -> (int -> unit) array) ->
  n:int ->
  prefix_seed:int ->
  prefix_len:int ->
  solo_pid:int ->
  budget:int ->
  outcome
(** [run ~make ~n ~prefix_seed ~prefix_len ~solo_pid ~budget] builds a
    fresh execution with [make], drives it at most [prefix_len] scheduling
    turns under a seeded random schedule (one step per turn at most), then
    runs [solo_pid] alone. [Terminated] iff [solo_pid] finished its whole
    remaining program within [budget] further steps — a consequence of
    wait-freedom when the per-process program is a bounded operation
    list. *)
