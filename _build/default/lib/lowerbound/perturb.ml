type round = {
  index : int;
  input : int;
  response : int;
  distinct_objects : int;
  read_steps : int;
}

(* Lemma V.1's value schedule: v_1 = 1, v_{r+1} = k^2 v_r + 1, capped at
   m - 1 (and at int overflow). *)
let maxreg_values ~m ~k =
  let rec go acc v =
    match Zmath.mul_opt (k * k) v with
    | Some v' when v' + 1 <= m - 1 -> go ((v' + 1) :: acc) (v' + 1)
    | Some _ | None -> List.rev acc
  in
  if m < 2 then [] else go [ 1 ] 1

(* Lemma V.3's batch schedule: I_1 = 1, I_r = (k^2 - 1) sum_{j<r} I_j + r,
   while the running total stays <= m. *)
let counter_batches ~m ~k =
  let rec go acc total r =
    let batch = ((k * k) - 1) * total + r in
    if batch <= 0 || total + batch > m then List.rev acc
    else go (batch :: acc) (total + batch) (r + 1)
  in
  if m < 1 then [] else go [ 1 ] 1 2

let rounds_bound_maxreg ~m ~k = List.length (maxreg_values ~m ~k)
let rounds_bound_counter ~m ~k = List.length (counter_batches ~m ~k)

(* Run one replay: every writer performs its job solo in pid order, then
   the reader (process n-1) performs one solo operation whose metrics are
   returned. *)
let replay ~n ~build ~reader_op =
  let exec = Sim.Exec.create ~n () in
  let obj, job = build exec in
  let programs =
    Array.init n (fun pid -> if pid = n - 1 then reader_op obj else job)
  in
  let policy =
    Sim.Schedule.Seq (List.init n (fun pid -> Sim.Schedule.Solo pid))
  in
  let outcome = Sim.Exec.run exec ~programs ~policy () in
  assert (Array.for_all Fun.id outcome.completed);
  let trace = Sim.Exec.trace exec in
  let read_record =
    Array.to_list (Sim.Metrics.ops trace)
    |> List.filter (fun r -> r.Sim.Metrics.name = "read")
    |> function
    | [ r ] -> r
    | _ -> invalid_arg "Perturb.replay: expected exactly one read"
  in
  read_record

let perturb_maxreg ~make ~m ~k =
  if k < 2 then invalid_arg "Perturb.perturb_maxreg: k < 2";
  let values = maxreg_values ~m ~k in
  let total_rounds = List.length values in
  let n = total_rounds + 1 in
  let prev_response = ref (-1) in
  List.mapi
    (fun i v_r ->
      let r = i + 1 in
      let this_round_values =
        List.filteri (fun j _ -> j < r) values
      in
      let build exec =
        let mr = make exec ~n in
        let job pid =
          if pid < r then
            let v = List.nth this_round_values pid in
            Sim.Api.op_unit ~name:"write" ~arg:v (fun () ->
                mr.Obj_intf.mr_write ~pid v)
        in
        (mr, job)
      in
      let reader_op mr pid =
        ignore
          (Sim.Api.op_int ~name:"read" (fun () -> mr.Obj_intf.mr_read ~pid))
      in
      let record = replay ~n ~build ~reader_op in
      let response =
        match record.Sim.Metrics.result with
        | Some x -> x
        | None -> invalid_arg "Perturb: read returned no value"
      in
      (* Each round genuinely perturbs the reader (see interface). *)
      assert (response > !prev_response);
      prev_response := response;
      { index = r;
        input = v_r;
        response;
        distinct_objects = record.Sim.Metrics.distinct_objects;
        read_steps = record.Sim.Metrics.steps })
    values

let perturb_counter ~make ~m ~k =
  if k < 2 then invalid_arg "Perturb.perturb_counter: k < 2";
  let batches = counter_batches ~m ~k in
  let total_rounds = List.length batches in
  let n = total_rounds + 1 in
  List.mapi
    (fun i batch_r ->
      let r = i + 1 in
      let this_round = List.filteri (fun j _ -> j < r) batches in
      let sum_before = List.fold_left ( + ) 0 this_round - batch_r in
      let build exec =
        let counter = make exec ~n in
        let job pid =
          if pid < r then begin
            let batch = List.nth this_round pid in
            for _ = 1 to batch do
              Sim.Api.op_unit ~name:"inc" (fun () ->
                  counter.Obj_intf.c_inc ~pid)
            done
          end
        in
        (counter, job)
      in
      let reader_op counter pid =
        ignore
          (Sim.Api.op_int ~name:"read" (fun () ->
               counter.Obj_intf.c_read ~pid))
      in
      let record = replay ~n ~build ~reader_op in
      let response =
        match record.Sim.Metrics.result with
        | Some x -> x
        | None -> invalid_arg "Perturb: read returned no value"
      in
      (* The response must exceed k * (increments before this round):
         that is what makes round r a perturbation (Lemma V.3). *)
      assert (response > k * sum_before || sum_before = 0);
      { index = r;
        input = batch_r;
        response;
        distinct_objects = record.Sim.Metrics.distinct_objects;
        read_steps = record.Sim.Metrics.steps })
    batches
