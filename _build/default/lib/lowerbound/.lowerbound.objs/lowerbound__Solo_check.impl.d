lib/lowerbound/solo_check.ml: Array Sim Workload
