lib/lowerbound/solo_check.mli: Sim
