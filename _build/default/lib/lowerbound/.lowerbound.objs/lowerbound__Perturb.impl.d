lib/lowerbound/perturb.ml: Array Fun List Obj_intf Sim Zmath
