lib/lowerbound/perturb.mli: Obj_intf Sim
