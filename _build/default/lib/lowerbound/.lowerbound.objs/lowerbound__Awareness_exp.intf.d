lib/lowerbound/awareness_exp.mli: Obj_intf Sim
