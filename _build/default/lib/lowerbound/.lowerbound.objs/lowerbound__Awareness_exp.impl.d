lib/lowerbound/awareness_exp.ml: Array Float Sim Workload
