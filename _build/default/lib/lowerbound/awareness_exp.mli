(** The awareness-set experiment behind the amortized lower bound
    (Section III-D).

    Runs the canonical workload of Theorem III.11 — every process performs
    one [CounterIncrement] followed by one [CounterRead] — with the
    simulator's awareness instrumentation enabled, and reports:

    - the total number of events (steps), which Theorem III.11 bounds below
      by [Omega(n log_{q+1}(n/k^2))] for solo-terminating implementations
      from read/write/conditional primitives;
    - the awareness-set sizes, which Corollary III.10.1 says must reach
      [n/(2k^2)] for at least [n/2] processes.

    The experiment {e validates} the lower bound's premises on concrete
    implementations (any correct k-multiplicative counter must satisfy
    both), and exhibits how far above the bound each implementation sits. *)

type result = {
  n : int;
  k : int;
  total_events : int;  (** all steps of the execution *)
  awareness_sizes : int array;  (** per process, unsorted *)
  top_half_min : int;
      (** the [n/2]-th largest awareness-set size: Corollary III.10.1
          asserts [top_half_min >= n/(2k^2)] *)
  events_bound : float;  (** the Theorem III.11 quantity [n * log2(n/k^2)] *)
  awareness_bound : float;  (** the Corollary III.10.1 quantity [n/(2k^2)] *)
}

val run :
  make:(Sim.Exec.t -> n:int -> Obj_intf.counter) ->
  n:int ->
  k:int ->
  policy:Sim.Schedule.t ->
  result
(** Build the counter in a fresh awareness-tracking execution, run the
    inc-then-read workload under [policy], and measure. *)
