type t = { cells : Sim.Memory.obj_id array }

let create exec ?(name = "collect") ~n () =
  { cells =
      Sim.Memory.alloc_many (Sim.Exec.memory exec) ~name n (Sim.Memory.V_int 0)
  }

let update t ~pid v = Sim.Api.write t.cells.(pid) v

let read_own t ~pid = Sim.Api.read t.cells.(pid)

let collect t = Array.map (fun cell -> Sim.Api.read cell) t.cells

let collect_fold t ~init ~f =
  Array.fold_left (fun acc cell -> f acc (Sim.Api.read cell)) init t.cells

let n t = Array.length t.cells
