(** Wait-free single-writer atomic snapshot (Afek, Attiya, Dolev, Gafni,
    Merritt, Shavit, JACM 1993).

    Each process owns one component. [update] embeds a fresh scan (the
    "view") alongside the new value; [scan] double-collects until either two
    consecutive collects agree (direct scan) or some component is seen to
    move twice, in which case that component's embedded view — obtained
    entirely within the scanner's interval — is borrowed.

    Step complexity: [scan] is [O(n^2)]; [update] is [O(n^2)] (it embeds a
    scan). This is the textbook substrate the paper alludes to for the
    trivial [O(n)]-per-operation exact counter; the cheaper collect-based
    counter lives in {!Counters.Collect_counter}. *)

type t

val create : Sim.Exec.t -> ?name:string -> n:int -> unit -> t
(** Build phase only. All components start at 0. *)

val update : t -> pid:int -> int -> unit
(** Set [pid]'s component to the given value. In-fiber, [O(n^2)] steps. *)

val scan : t -> pid:int -> int array
(** An atomic view of all [n] components. In-fiber, [O(n^2)] steps. *)

val n : t -> int
