lib/prims/collect.mli: Sim
