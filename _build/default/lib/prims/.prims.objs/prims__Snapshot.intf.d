lib/prims/snapshot.mli: Sim
