lib/prims/snapshot.ml: Array Sim
