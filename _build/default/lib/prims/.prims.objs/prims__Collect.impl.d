lib/prims/collect.ml: Array Sim
