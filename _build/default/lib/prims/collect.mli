(** Single-writer multi-reader register arrays with a collect operation.

    The simplest substrate for wait-free exact objects: process [p] owns
    cell [p] and is its only writer; a {e collect} reads all [n] cells one by
    one ([n] steps). Collects are not atomic snapshots, but for objects whose
    per-cell contents are monotone (counters of increments, maxima) a single
    collect linearizes, which is how the classic [O(n)] exact counter works
    (see {!Counters.Collect_counter}). *)

type t

val create : Sim.Exec.t -> ?name:string -> n:int -> unit -> t
(** Allocate [n] integer cells initialised to 0. Build phase only. *)

val update : t -> pid:int -> int -> unit
(** [update t ~pid v] writes [v] to [pid]'s own cell. One step. In-fiber. *)

val read_own : t -> pid:int -> int
(** Read [pid]'s own cell. One step. In-fiber. *)

val collect : t -> int array
(** Read all cells in index order. [n] steps. In-fiber. *)

val collect_fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold over all cells in index order without materialising the array.
    [n] steps. In-fiber. *)

val n : t -> int
