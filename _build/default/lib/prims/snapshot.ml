(* Each cell holds [V_vec [| seq; data; view_0; ...; view_{n-1} |]]: a
   sequence number, the component's current value and the view embedded by
   the writing update. *)

type t = {
  n : int;
  cells : Sim.Memory.obj_id array;
  (* Local mirror of each process's own sequence number; sound because the
     cell is single-writer. Local state costs no steps. *)
  seqs : int array;
}

let create exec ?(name = "snap") ~n () =
  let initial = Sim.Memory.V_vec (Array.make (n + 2) 0) in
  { n;
    cells =
      Sim.Memory.alloc_many (Sim.Exec.memory exec) ~name n initial;
    seqs = Array.make n 0 }

let n t = t.n

let seq_of cell = cell.(0)
let data_of cell = cell.(1)
let view_of t cell = Array.sub cell 2 t.n

let collect t = Array.map (fun id -> Sim.Api.read_vec id) t.cells

(* One double-collect round; [moved] persists across rounds. *)
let scan t ~pid:_ =
  let moved = Array.make t.n false in
  let rec round () =
    let a = collect t in
    let b = collect t in
    let agree = ref true in
    let borrowed = ref None in
    for i = 0 to t.n - 1 do
      if seq_of a.(i) <> seq_of b.(i) then begin
        agree := false;
        if moved.(i) then begin
          match !borrowed with
          | None -> borrowed := Some (view_of t b.(i))
          | Some _ -> ()
        end
        else moved.(i) <- true
      end
    done;
    if !agree then Array.map data_of b
    else
      match !borrowed with
      | Some view -> view
      | None -> round ()
  in
  round ()

let update t ~pid v =
  let view = scan t ~pid in
  t.seqs.(pid) <- t.seqs.(pid) + 1;
  let cell = Array.make (t.n + 2) 0 in
  cell.(0) <- t.seqs.(pid);
  cell.(1) <- v;
  Array.blit view 0 cell 2 t.n;
  Sim.Api.write_vec t.cells.(pid) cell
