exception Overflow

let mul_opt a b =
  if a < 0 || b < 0 then invalid_arg "Zmath.mul_opt: negative argument";
  if a = 0 || b = 0 then Some 0
  else if a > max_int / b then None
  else Some (a * b)

let pow_opt k e =
  if k < 0 || e < 0 then invalid_arg "Zmath.pow_opt: negative argument";
  let rec go acc k e =
    if e = 0 then Some acc
    else
      let acc = if e land 1 = 1 then mul_opt acc k else Some acc in
      match acc with
      | None -> None
      | Some acc ->
        if e lsr 1 = 0 then Some acc
        else (match mul_opt k k with
              | None -> None
              | Some k2 -> go acc k2 (e lsr 1))
  in
  go 1 k e

let pow k e =
  match pow_opt k e with
  | Some v -> v
  | None -> raise Overflow

let floor_log ~base v =
  if base < 2 then invalid_arg "Zmath.floor_log: base < 2";
  if v < 1 then invalid_arg "Zmath.floor_log: v < 1";
  let rec go e acc =
    match mul_opt acc base with
    | Some acc' when acc' <= v -> go (e + 1) acc'
    | Some _ | None -> e
  in
  go 0 1

let is_power_aux ~base v e =
  match pow_opt base e with Some p -> p = v | None -> false

let ceil_log ~base v =
  if v = 1 then 0
  else
    let f = floor_log ~base v in
    if is_power_aux ~base v f then f else f + 1

let ceil_log2 v = ceil_log ~base:2 v

let is_power ~base v =
  if v < 1 then false else is_power_aux ~base v (floor_log ~base v)

let ceil_sqrt v =
  if v < 0 then invalid_arg "Zmath.ceil_sqrt: negative argument";
  if v = 0 then 0
  else begin
    let s = int_of_float (Float.sqrt (float_of_int v)) in
    (* Correct the float estimate in both directions. *)
    let s = ref (max 1 s) in
    while !s * !s >= v && !s > 1 && (!s - 1) * (!s - 1) >= v do decr s done;
    while !s * !s < v do incr s done;
    !s
  end

let within_k ~k ~exact x =
  if k < 1 || exact < 0 || x < 0 then
    invalid_arg "Zmath.within_k: negative argument";
  let le_mul a b c =
    (* a <= b * c without overflow *)
    match mul_opt b c with Some p -> a <= p | None -> true
  in
  le_mul exact x k && le_mul x exact k

let geometric_sum ~base ~lo ~hi =
  let rec go acc l =
    if l > hi then acc
    else
      let term = pow base l in
      if acc > max_int - term then raise Overflow else go (acc + term) (l + 1)
  in
  if lo > hi then 0 else go 0 lo
