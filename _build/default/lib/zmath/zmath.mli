(** Exact integer arithmetic helpers shared by the algorithms and the
    experiments: powers, integer logarithms and the k-multiplicative
    accuracy predicate, all overflow-checked. *)

exception Overflow
(** Raised when a result would not fit in an OCaml [int]. *)

val pow : int -> int -> int
(** [pow k e] is [k^e] for [k >= 0], [e >= 0].
    @raise Overflow on overflow.
    @raise Invalid_argument on negative arguments. *)

val pow_opt : int -> int -> int option
(** Like {!pow} but [None] on overflow. *)

val mul_opt : int -> int -> int option
(** Overflow-checked product of non-negative ints; [None] on overflow. *)

val floor_log : base:int -> int -> int
(** [floor_log ~base v] is the largest [e] with [base^e <= v], for
    [base >= 2] and [v >= 1].
    @raise Invalid_argument if [base < 2] or [v < 1]. *)

val ceil_log : base:int -> int -> int
(** [ceil_log ~base v] is the smallest [e] with [base^e >= v], for
    [base >= 2] and [v >= 1]. *)

val ceil_log2 : int -> int
(** [ceil_log2 v = ceil_log ~base:2 v]. *)

val ceil_sqrt : int -> int
(** [ceil_sqrt v] is the smallest [s >= 0] with [s * s >= v], for
    [v >= 0]. *)

val is_power : base:int -> int -> bool
(** Whether [v] is an exact power of [base] ([base^0 = 1] included). *)

val within_k : k:int -> exact:int -> int -> bool
(** [within_k ~k ~exact x] decides the k-multiplicative accuracy relation
    [exact / k <= x <= exact * k] over the rationals (no integer-division
    artefacts, no overflow): equivalently [exact <= x * k] and
    [x <= exact * k]. Requires [k >= 1], [exact >= 0], [x >= 0]. *)

val geometric_sum : base:int -> lo:int -> hi:int -> int
(** [geometric_sum ~base ~lo ~hi] is [sum over l in lo..hi of base^l]
    ([0] when [lo > hi]). @raise Overflow on overflow. *)
