(* E2 (Lemma III.8 regimes): amortized cost of Algorithm 1 as a function of
   the accuracy parameter k, for fixed n. The analysis gives constant
   amortized complexity for k >= sqrt(n); below that the object is still
   wait-free and cheap, but its accuracy guarantee degrades (E7 measures
   that side). This table shows cost vs k, plus the largest relative error
   observed by any read under a random schedule. *)

let measure ~n ~k ~ops_per_process ~seed =
  let exec = Sim.Exec.create ~trace_steps:false ~n () in
  let counter = Approx.Kcounter.create exec ~n ~k () in
  (* Track the true number of completed increments to score read error.
     The count is maintained by the driver (local computation). *)
  let completed = ref 0 in
  let worst_ratio = ref 1.0 in
  let script =
    Workload.Script.counter_mix ~seed ~n ~ops_per_process ~read_fraction:0.3
  in
  let handle = Approx.Kcounter.handle counter in
  let counting_handle =
    { handle with
      Obj_intf.c_inc =
        (fun ~pid ->
          handle.Obj_intf.c_inc ~pid;
          incr completed) }
  in
  let programs =
    Workload.Script.counter_programs
      ~on_read:(fun ~pid:_ x ->
        if !completed > 0 && x > 0 then begin
          let v = float_of_int !completed in
          let r = Float.max (float_of_int x /. v) (v /. float_of_int x) in
          if r > !worst_ratio then worst_ratio := r
        end)
      counting_handle script
  in
  ignore (Sim.Exec.run exec ~programs ~policy:(Sim.Schedule.Random seed) ());
  (Sim.Exec.amortized exec, !worst_ratio)

let run () =
  Tables.section
    "E2  Cost and accuracy of Algorithm 1 vs k (Lemma III.8)\n\
     workload: 30% reads, 2048 ops/process, random schedule";
  List.iter
    (fun n ->
      let rows =
        List.map
          (fun k ->
            let amortized, worst_ratio =
              measure ~n ~k ~ops_per_process:2048 ~seed:7
            in
            [ string_of_int k;
              (if Approx.Accuracy.valid_k ~k ~n then "yes" else "no");
              Tables.fmt_float amortized;
              Tables.fmt_float worst_ratio;
              string_of_int k ])
          [ 2; 4; 8; 16; 32 ]
      in
      Tables.print_table
        ~title:(Printf.sprintf "n = %d (sqrt n = %.1f)" n
                  (Float.sqrt (float_of_int n)))
        ~header:[ "k"; "k>=sqrt n"; "amortized"; "worst x/v ratio";
                  "ratio bound" ]
        rows)
    [ 16; 64 ];
  print_endline
    "paper: amortized cost is constant for every k (the analysis needs\n\
     k >= sqrt n only for accuracy); the observed worst ratio generally\n\
     stays within k whenever k >= sqrt n. (The ratio is scored against\n\
     the completed count at read-return, so reads concurrent with bursts\n\
     of increments -- and startup-corner reads, see the erratum in\n\
     EXPERIMENTS.md -- can exceed it slightly even in 'yes' rows.)"
