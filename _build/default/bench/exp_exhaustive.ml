(* E11: bounded model checking of linearizability — every interleaving of
   small configurations is enumerated (Lincheck.Explore) and each complete
   trace checked against the (relaxed) sequential specification.

   This upgrades the sampled linearizability evidence of E7 to exhaustive
   evidence on small instances of Lemma III.5 (Algorithm 1), Lemma IV.1
   (Algorithm 2) and the substrates. The "broken collect maxreg" row is the
   negative control: the non-linearizable max register this repository's
   first draft used (a read that collects cells one at a time), which the
   explorer duly catches. *)

type case = {
  label : string;
  spec_check : (unit -> Sim.Exec.t * (int -> unit) array) -> Lincheck.Explore.stats;
  build : unit -> Sim.Exec.t * (int -> unit) array;
}

let counter_case ~label ~spec ~make script =
  { label;
    spec_check =
      (fun build -> Lincheck.Explore.exhaustive ~build ~spec ());
    build =
      (fun () ->
        let n = Array.length script in
        let exec = Sim.Exec.create ~n () in
        let handle = make exec ~n in
        (exec, Workload.Script.counter_programs handle script)) }

let maxreg_case ~label ~spec ~make script =
  { label;
    spec_check =
      (fun build -> Lincheck.Explore.exhaustive ~build ~spec ());
    build =
      (fun () ->
        let n = Array.length script in
        let exec = Sim.Exec.create ~n () in
        let handle = make exec ~n in
        (exec, Workload.Script.maxreg_programs handle script)) }

(* The deliberately broken single-collect max register (negative control;
   see Linear_maxreg's documentation for why this is not linearizable). *)
let broken_collect_maxreg exec ~n =
  let cells = Prims.Collect.create exec ~name:"broken" ~n () in
  let own = Array.make n 0 in
  { Obj_intf.mr_label = "broken-collect-maxreg";
    mr_write =
      (fun ~pid v ->
        if v > own.(pid) then begin
          own.(pid) <- v;
          Prims.Collect.update cells ~pid v
        end);
    mr_read = (fun ~pid:_ -> Prims.Collect.collect_fold cells ~init:0 ~f:max) }

let cases =
  [ counter_case ~label:"kcounter (Alg 1), k=2"
      ~spec:(Lincheck.Spec.k_counter ~k:2)
      ~make:(fun exec ~n ->
        Approx.Kcounter.handle (Approx.Kcounter.create exec ~n ~k:2 ()))
      [| [ Inc; Inc; Read ]; [ Inc; Inc; Read ] |];
    counter_case ~label:"kcounter 3 procs"
      ~spec:(Lincheck.Spec.k_counter ~k:2)
      ~make:(fun exec ~n ->
        Approx.Kcounter.handle (Approx.Kcounter.create exec ~n ~k:2 ()))
      [| [ Inc; Read ]; [ Inc; Read ]; [ Inc; Read ] |];
    counter_case ~label:"startup-corrected kcounter"
      ~spec:(Lincheck.Spec.k_counter ~k:2)
      ~make:(fun exec ~n ->
        Approx.Kcounter_variants.Startup_corrected.handle
          (Approx.Kcounter_variants.Startup_corrected.create exec ~n ~k:2 ()))
      [| [ Inc; Inc; Read ]; [ Inc; Read ] |];
    counter_case ~label:"collect counter (exact)"
      ~spec:Lincheck.Spec.exact_counter
      ~make:(fun exec ~n ->
        Counters.Collect_counter.handle
          (Counters.Collect_counter.create exec ~n ()))
      [| [ Inc; Read ]; [ Inc; Read ]; [ Inc; Read ] |];
    counter_case ~label:"kadditive counter, k=3"
      ~spec:(Lincheck.Spec.k_additive_counter ~k:3)
      ~make:(fun exec ~n ->
        Approx.Kadditive_counter.handle
          (Approx.Kadditive_counter.create exec ~n ~k:3 ()))
      [| [ Inc; Inc; Read ]; [ Inc; Inc; Read ] |];
    maxreg_case ~label:"kmaxreg (Alg 2), m=5 k=2"
      ~spec:(Lincheck.Spec.k_max_register ~k:2)
      ~make:(fun exec ~n ->
        Approx.Kmaxreg.handle (Approx.Kmaxreg.create exec ~n ~m:5 ~k:2 ()))
      [| [ Write 2; Read ]; [ Write 4; Read ] |];
    maxreg_case ~label:"tree maxreg (exact), m=8"
      ~spec:Lincheck.Spec.exact_max_register
      ~make:(fun exec ~n:_ ->
        Maxreg.Tree_maxreg.handle (Maxreg.Tree_maxreg.create exec ~m:8 ()))
      [| [ Write 3; Read ]; [ Write 6; Read ] |];
    maxreg_case ~label:"BROKEN collect maxreg (control)"
      ~spec:Lincheck.Spec.exact_max_register ~make:broken_collect_maxreg
      [| [ Write 9 ]; [ Write 7 ]; [ Read; Read ] |] ]

let run () =
  Tables.section
    "E11  Exhaustive interleaving exploration (bounded model checking)";
  let rows =
    List.map
      (fun case ->
        let stats = case.spec_check case.build in
        [ case.label;
          string_of_int stats.Lincheck.Explore.executions;
          string_of_int stats.Lincheck.Explore.replays;
          string_of_int stats.Lincheck.Explore.max_depth;
          string_of_int stats.Lincheck.Explore.violations;
          (if stats.Lincheck.Explore.truncated then "yes" else "no") ])
      cases
  in
  Tables.print_table
    ~title:"all interleavings of each tiny configuration, checked"
    ~header:[ "object"; "executions"; "replays"; "depth"; "violations";
              "truncated" ]
    rows;
  print_endline
    "every implementation shows 0 violations over its full interleaving\n\
     space; the BROKEN control (a max register whose read is a plain\n\
     collect) is caught, demonstrating the harness has teeth."
