(* T1: wall-clock microbenchmarks (Bechamel, single domain).

   One Test.make per experiment table column:
   - the "e1.*" group times the real (Atomic) counter operations whose
     step counts E1 measures in the simulator;
   - the "e4.*" group does the same for the max registers of E4;
   - the "sim.*" group times whole simulated mini-executions, giving the
     cost of one simulated step (effects + trace recording). *)

open Bechamel
open Toolkit

let counter_tests () =
  let n = 4 in
  let kc = Mcore.Mc_kcounter.create ~n ~k:2 () in
  let faa = Mcore.Mc_baselines.Faa_counter.create () in
  let col = Mcore.Mc_baselines.Collect_counter.create ~n in
  let lock = Mcore.Mc_baselines.Lock_counter.create () in
  let kadd = Mcore.Mc_more_counters.Kadditive.create ~n ~k:256 () in
  let tree = Mcore.Mc_more_counters.Tree_counter.create ~n () in
  Test.make_grouped ~name:"e1.counter-ops"
    [ Test.make ~name:"kcounter-inc"
        (Staged.stage (fun () -> Mcore.Mc_kcounter.increment kc ~pid:0));
      Test.make ~name:"kcounter-read"
        (Staged.stage (fun () -> ignore (Mcore.Mc_kcounter.read kc ~pid:0)));
      Test.make ~name:"faa-inc"
        (Staged.stage (fun () -> Mcore.Mc_baselines.Faa_counter.increment faa));
      Test.make ~name:"collect-inc"
        (Staged.stage (fun () ->
             Mcore.Mc_baselines.Collect_counter.increment col ~pid:0));
      Test.make ~name:"collect-read"
        (Staged.stage (fun () ->
             ignore (Mcore.Mc_baselines.Collect_counter.read col)));
      Test.make ~name:"lock-inc"
        (Staged.stage (fun () ->
             Mcore.Mc_baselines.Lock_counter.increment lock));
      Test.make ~name:"kadditive-inc"
        (Staged.stage (fun () ->
             Mcore.Mc_more_counters.Kadditive.increment kadd ~pid:0));
      Test.make ~name:"tree-inc"
        (Staged.stage (fun () ->
             Mcore.Mc_more_counters.Tree_counter.increment tree ~pid:0));
      Test.make ~name:"tree-read"
        (Staged.stage (fun () ->
             ignore (Mcore.Mc_more_counters.Tree_counter.read tree))) ]

let maxreg_tests () =
  let kmr = Mcore.Mc_kmaxreg.create ~m:(1 lsl 30) ~k:2 () in
  let cas = Mcore.Mc_baselines.Cas_maxreg.create () in
  let tick = ref 0 in
  Test.make_grouped ~name:"e4.maxreg-ops"
    [ Test.make ~name:"kmaxreg-write"
        (Staged.stage (fun () ->
             incr tick;
             Mcore.Mc_kmaxreg.write kmr (!tick land 0x3FFFFFF)));
      Test.make ~name:"kmaxreg-read"
        (Staged.stage (fun () -> ignore (Mcore.Mc_kmaxreg.read kmr)));
      Test.make ~name:"cas-maxreg-write"
        (Staged.stage (fun () ->
             incr tick;
             Mcore.Mc_baselines.Cas_maxreg.write cas (!tick land 0x3FFFFFF)));
      Test.make ~name:"cas-maxreg-read"
        (Staged.stage (fun () ->
             ignore (Mcore.Mc_baselines.Cas_maxreg.read cas))) ]

let sim_tests () =
  (* Whole mini-executions: 4 processes, 64 ops each. *)
  let run_sim make_counter () =
    let n = 4 in
    let exec = Sim.Exec.create ~n () in
    let counter = make_counter exec ~n in
    let script =
      Workload.Script.counter_mix ~seed:1 ~n ~ops_per_process:64
        ~read_fraction:0.3
    in
    let programs = Workload.Script.counter_programs counter script in
    ignore (Sim.Exec.run exec ~programs ~policy:(Sim.Schedule.Random 1) ())
  in
  Test.make_grouped ~name:"sim.mini-executions"
    [ Test.make ~name:"kcounter-256ops"
        (Staged.stage
           (run_sim (fun exec ~n ->
                Approx.Kcounter.handle (Approx.Kcounter.create exec ~n ~k:2 ()))));
      Test.make ~name:"collect-256ops"
        (Staged.stage
           (run_sim (fun exec ~n ->
                Counters.Collect_counter.handle
                  (Counters.Collect_counter.create exec ~n ()))));
      Test.make ~name:"tree-256ops"
        (Staged.stage
           (run_sim (fun exec ~n ->
                Counters.Tree_counter.handle
                  (Counters.Tree_counter.create exec ~n ())))) ]

let run () =
  Tables.section "T1  Bechamel wall-clock microbenchmarks (ns/op, OLS)";
  let tests =
    Test.make_grouped ~name:"approx-objects"
      [ counter_tests (); maxreg_tests (); sim_tests () ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Tables.fmt_float x
        | Some [] | None -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      rows := [ name; estimate; r2 ] :: !rows)
    results;
  let sorted = List.sort compare !rows in
  Tables.print_table ~title:"per-operation wall time"
    ~header:[ "benchmark"; "ns/op"; "r^2" ]
    sorted
