bench/exp_exhaustive.ml: Approx Array Counters Lincheck List Maxreg Obj_intf Prims Sim Tables Workload
