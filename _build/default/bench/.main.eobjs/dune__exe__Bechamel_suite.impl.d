bench/bechamel_suite.ml: Analyze Approx Bechamel Benchmark Counters Hashtbl Instance List Mcore Measure Printf Sim Staged Tables Test Time Toolkit Workload
