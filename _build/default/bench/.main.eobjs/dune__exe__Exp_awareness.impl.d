bench/exp_awareness.ml: Approx Array Counters List Lowerbound Option Printf Sim Tables Zmath
