bench/exp_perturb.ml: Approx Counters Float List Lowerbound Maxreg Tables Zmath
