bench/main.ml: Array Bechamel_suite Exp_ablation Exp_accuracy Exp_amortized Exp_awareness Exp_exhaustive Exp_fig1 Exp_ksweep Exp_maxreg_wc Exp_mc Exp_perturb List Printf Sys
