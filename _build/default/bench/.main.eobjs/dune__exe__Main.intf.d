bench/main.mli:
