bench/tables.ml: Array Float List Printf String Zmath
