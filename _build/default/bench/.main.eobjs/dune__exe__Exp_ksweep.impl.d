bench/exp_ksweep.ml: Approx Float List Obj_intf Printf Sim Tables Workload
