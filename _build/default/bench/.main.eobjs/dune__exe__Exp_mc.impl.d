bench/exp_mc.ml: Domain List Mcore Printf Tables Zmath
