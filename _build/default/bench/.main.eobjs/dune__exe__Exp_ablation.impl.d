bench/exp_ablation.ml: Approx Array Float List Obj_intf Printf Sim Tables Workload
