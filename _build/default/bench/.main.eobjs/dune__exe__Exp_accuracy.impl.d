bench/exp_accuracy.ml: Approx Array Lincheck List Option Printf Sim Tables Workload
