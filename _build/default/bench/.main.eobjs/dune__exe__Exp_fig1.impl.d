bench/exp_fig1.ml: Approx Buffer List Printf Sim Tables
