bench/exp_maxreg_wc.ml: Approx Array Counters List Maxreg Obj_intf Sim Tables Zmath
