bench/exp_amortized.ml: Approx Counters List Sim Tables Workload Zmath
