(* E1 (Theorem III.9 / Lemma III.8): amortized step complexity of
   Algorithm 1 with k = ceil(sqrt n) is constant in both n and the
   execution length, while the exact baselines pay Theta(n) (collect) or
   polylog (AACH tree).

   Workload: n processes, `ops` operations per process, 30% reads, seeded
   random schedule. One table row per (n, total ops); one column per
   implementation. Entries are amortized steps per operation. *)

let make_impls ~n ~k exec =
  [ Approx.Kcounter.handle (Approx.Kcounter.create exec ~n ~k ());
    Counters.Collect_counter.handle (Counters.Collect_counter.create exec ~n ());
    Counters.Tree_counter.handle (Counters.Tree_counter.create exec ~n ());
    Counters.Faa_counter.handle (Counters.Faa_counter.create exec ()) ]

let impl_labels = [ "kcounter"; "collect"; "aach-tree"; "faa" ]

let measure ~n ~k ~ops_per_process ~impl_index ~seed =
  let exec = Sim.Exec.create ~trace_steps:false ~n () in
  let counter = List.nth (make_impls ~n ~k exec) impl_index in
  let script =
    Workload.Script.counter_mix ~seed ~n ~ops_per_process ~read_fraction:0.3
  in
  let programs = Workload.Script.counter_programs counter script in
  ignore (Sim.Exec.run exec ~programs ~policy:(Sim.Schedule.Random seed) ());
  Sim.Exec.amortized exec

let run () =
  Tables.section
    "E1  Amortized step complexity of counters (Theorem III.9)\n\
     workload: 30% reads, random schedule, k = ceil(sqrt n)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let k = Zmath.ceil_sqrt n in
      List.iter
        (fun ops_per_process ->
          let cells =
            List.mapi
              (fun impl_index _ ->
                Tables.fmt_float
                  (measure ~n ~k ~ops_per_process ~impl_index ~seed:42))
              impl_labels
          in
          rows :=
            (string_of_int n :: string_of_int k
             :: string_of_int (n * ops_per_process)
             :: cells)
            :: !rows)
        [ 256; 1024; 4096 ])
    [ 4; 16; 64 ];
  Tables.print_table
    ~title:"amortized steps per operation (lower is better)"
    ~header:([ "n"; "k"; "total ops" ] @ impl_labels)
    (List.rev !rows);
  print_endline
    "paper: kcounter column is O(1) for k >= sqrt(n) and does not grow\n\
     with n or execution length; collect grows linearly in n (reads cost\n\
     n); the AACH tree grows polylogarithmically; faa is the non-historyless\n\
     reference at 1.0."
