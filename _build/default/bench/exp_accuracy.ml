(* E7 (Claim III.6): the accuracy envelope, measured — including its
   failure mode when k < sqrt(n).

   Part 1 (random schedules): for every completed read, score the returned
   value x against the conservative envelope
   [completed-incs-before-invocation / k, k * incs-invoked-before-return].
   A violation of this envelope implies a violation of the linearizable
   k-accuracy spec. Expected: zero violations for k >= sqrt(n).

   Part 2 (hoarding adversary): every process is stopped just under its
   announce threshold, then one process reads. The read sees only
   announced increments; for k < sqrt(n) the linearized count can exceed
   k * x, breaking the envelope — exactly the regime the paper's
   precondition excludes. *)

let random_schedule_violations ~n ~k ~seed =
  let exec = Sim.Exec.create ~n () in
  let counter = Approx.Kcounter.create exec ~n ~k () in
  let script =
    Workload.Script.counter_mix ~seed ~n ~ops_per_process:500
      ~read_fraction:0.25
  in
  let programs =
    Workload.Script.counter_programs (Approx.Kcounter.handle counter) script
  in
  ignore (Sim.Exec.run exec ~programs ~policy:(Sim.Schedule.Random seed) ());
  let ops = Lincheck.History.of_trace (Sim.Exec.trace exec) in
  let reads = ref 0 and violations = ref 0 in
  Array.iter
    (fun (op : Lincheck.History.op) ->
      if op.name = "read" && op.completed then begin
        incr reads;
        let x = Option.get op.result in
        let v_low = ref 0 and v_high = ref 0 in
        Array.iter
          (fun (o : Lincheck.History.op) ->
            if o.name = "inc" then begin
              if o.completed && o.ret_index < op.inv_index then incr v_low;
              if o.inv_index < op.ret_index then incr v_high
            end)
          ops;
        if (x * k < !v_low) || (!v_high > 0 && x > k * !v_high) then
          incr violations
      end)
    ops;
  (!reads, !violations)

let hoarding_read ~n ~k =
  (* Every incrementer performs k^2 + k increments solo (announcing only
     the cheap early switches), then a reader reads. *)
  let exec = Sim.Exec.create ~n () in
  let counter = Approx.Kcounter.create exec ~n ~k () in
  let result = ref 0 in
  let per_process = (k * k) + k + 1 in
  let programs =
    Array.init n (fun i ->
        if i = n - 1 then fun pid ->
          result :=
            Sim.Api.op_int ~name:"read" (fun () ->
                Approx.Kcounter.read counter ~pid)
        else fun pid ->
          for _ = 1 to per_process do
            Sim.Api.op_unit ~name:"inc" (fun () ->
                Approx.Kcounter.increment counter ~pid)
          done)
  in
  ignore
    (Sim.Exec.run exec ~programs
       ~policy:(Sim.Schedule.Seq (List.init n (fun pid -> Sim.Schedule.Solo pid)))
       ());
  let v = (n - 1) * per_process in
  (v, !result)

(* The startup-corner erratum (EXPERIMENTS.md): every process parks just
   below its announce threshold, so only switch_0 is set; the read returns
   ReturnValue(0,0) = k against up to 1 + n(k-1) completed increments. *)
let parked_corner ~n ~k ~read =
  let exec = Sim.Exec.create ~n () in
  let inc, do_read = read exec ~n ~k in
  let result = ref 0 in
  let programs =
    Array.init n (fun i ->
        if i = n - 1 then fun pid ->
          result := Sim.Api.op_int ~name:"read" (fun () -> do_read ~pid)
        else fun pid ->
          let incs = if pid = 0 then k else k - 1 in
          for _ = 1 to incs do
            Sim.Api.op_unit ~name:"inc" (fun () -> inc ~pid)
          done)
  in
  ignore
    (Sim.Exec.run exec ~programs
       ~policy:(Sim.Schedule.Seq (List.init n (fun p -> Sim.Schedule.Solo p)))
       ());
  (k + ((n - 2) * (k - 1)), !result)

let run_erratum () =
  let original exec ~n ~k =
    let c = Approx.Kcounter.create exec ~n ~k () in
    ((fun ~pid -> Approx.Kcounter.increment c ~pid),
     fun ~pid -> Approx.Kcounter.read c ~pid)
  in
  let corrected exec ~n ~k =
    let c = Approx.Kcounter_variants.Startup_corrected.create exec ~n ~k () in
    ((fun ~pid ->
       Approx.Kcounter_variants.Startup_corrected.increment c ~pid),
     fun ~pid -> Approx.Kcounter_variants.Startup_corrected.read c ~pid)
  in
  let rows =
    List.concat_map
      (fun (n, k) ->
        let describe label read =
          let v, x = parked_corner ~n ~k ~read in
          [ string_of_int n;
            string_of_int k;
            (if Approx.Accuracy.valid_k ~k ~n then "yes" else "no");
            label;
            string_of_int v;
            string_of_int x;
            (if Approx.Accuracy.within ~k ~exact:v x then "within"
             else "OUTSIDE") ]
        in
        [ describe "Algorithm 1" original;
          describe "startup-corrected" corrected ])
      [ (4, 2); (9, 3); (16, 4); (64, 8) ]
  in
  Tables.print_table
    ~title:"startup-corner (parked) adversary: the Lemma III.5 erratum"
    ~header:[ "n"; "k"; "k>=sqrt n"; "variant"; "true v"; "read"; "envelope" ]
    rows;
  print_endline
    "finding: for n > k+1 the paper's algorithm violates the envelope even\n\
     with k = sqrt(n) (ReturnValue(0,0) = k cannot cover the 1 + n(k-1)\n\
     increments parked below the announce thresholds; the proof of Lemma\n\
     III.5 assumes q >= 1 or p >= 1). The startup-corrected variant\n\
     (first-increment announce bits + a corner collect) repairs it for\n\
     every n and k; see Kcounter_variants.Startup_corrected."

let run () =
  Tables.section "E7  Accuracy envelope and its k >= sqrt(n) precondition";
  let n = 16 in
  let rows =
    List.map
      (fun k ->
        let reads, violations =
          List.fold_left
            (fun (r, v) seed ->
              let r', v' = random_schedule_violations ~n ~k ~seed in
              (r + r', v + v'))
            (0, 0)
            [ 1; 2; 3; 4; 5 ]
        in
        let v, x = hoarding_read ~n ~k in
        [ string_of_int k;
          (if Approx.Accuracy.valid_k ~k ~n then "yes" else "no");
          Printf.sprintf "%d/%d" violations reads;
          string_of_int v;
          string_of_int x;
          (if Approx.Accuracy.within ~k ~exact:v x then "within"
           else "OUTSIDE") ])
      [ 2; 3; 4; 6; 8 ]
  in
  Tables.print_table
    ~title:(Printf.sprintf
              "n = %d (sqrt n = 4): random-schedule violations and the \
               hoarding adversary" n)
    ~header:[ "k"; "k>=sqrt n"; "violations (random)"; "hoard v";
              "hoard read"; "envelope" ]
    rows;
  print_endline
    "paper: for k >= sqrt(n) every read is within [v/k, v*k] (Claim III.6 /\n\
     Theorem III.9) -- those rows must show 0 violations and 'within'. For\n\
     k < sqrt(n) the guarantee is void: the hoarding adversary hides up to\n\
     n*(k^2-1) increments and drives reads OUTSIDE the envelope.";
  run_erratum ()
