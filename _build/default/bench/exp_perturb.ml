(* E5 + E6 (Section V): the perturbation lower-bound constructions, run
   against our implementations.

   E5 (Lemma V.1 / Theorem V.2, max registers): round r writes
   v_r = k^2 v_{r-1} + 1; each round provably changes the reader's solo
   response. We report the rounds achieved L (predicted Theta(log_k m)),
   the distinct base objects the reader's final solo read touches, and the
   log2 L bound it must respect.

   E6 (Lemma V.3 / Theorem V.4, counters): increment batches
   I_r = (k^2-1) sum I_j + r under a total budget m. *)

let run_maxreg () =
  Tables.section
    "E5  Perturbation adversary vs bounded max registers (Lemma V.1)";
  let rows =
    List.concat_map
      (fun e ->
        let m = 1 lsl e in
        List.concat_map
          (fun k ->
            let for_impl label make =
              let rounds = Lowerbound.Perturb.perturb_maxreg ~make ~m ~k in
              let l = List.length rounds in
              let final = List.nth rounds (l - 1) in
              [ Tables.fmt_pow2 m;
                string_of_int k;
                label;
                string_of_int l;
                Tables.fmt_float
                  (float_of_int (Zmath.floor_log ~base:k (m - 1)) /. 2.0);
                string_of_int final.Lowerbound.Perturb.distinct_objects;
                Tables.fmt_float
                  (Float.log (float_of_int l) /. Float.log 2.0) ]
            in
            [ for_impl "kmaxreg" (fun exec ~n ->
                  Approx.Kmaxreg.handle
                    (Approx.Kmaxreg.create exec ~n ~m ~k ()));
              for_impl "exact" (fun exec ~n:_ ->
                  Maxreg.Tree_maxreg.handle
                    (Maxreg.Tree_maxreg.create exec ~m ())) ])
          [ 2; 4 ])
      [ 12; 24; 36; 48 ]
  in
  Tables.print_table
    ~title:"perturbation rounds and reader's distinct base objects"
    ~header:[ "m"; "k"; "impl"; "rounds L"; "log_k(m)/2"; "reader objects";
              "log2 L" ]
    rows;
  print_endline
    "paper: L matches Theta(log_k m) (compare with the log_k(m)/2 column);\n\
     every reader respects the Omega(log2 L) object bound; Algorithm 2's\n\
     reader sits close to log2 L while the exact register pays log2 m."

let run_counter () =
  Tables.section
    "E6  Perturbation adversary vs bounded counters (Lemma V.3)";
  let rows =
    List.concat_map
      (fun m ->
        List.concat_map
          (fun k ->
            let for_impl label make =
              let rounds = Lowerbound.Perturb.perturb_counter ~make ~m ~k in
              let l = List.length rounds in
              let final = List.nth rounds (l - 1) in
              [ Tables.fmt_pow2 m;
                string_of_int k;
                label;
                string_of_int l;
                Tables.fmt_float
                  (float_of_int (Zmath.floor_log ~base:k m) /. 2.0);
                string_of_int final.Lowerbound.Perturb.distinct_objects;
                Tables.fmt_float
                  (Float.log (float_of_int l) /. Float.log 2.0);
                string_of_int final.Lowerbound.Perturb.read_steps ]
            in
            [ for_impl "kcounter" (fun exec ~n ->
                  Approx.Kcounter.handle
                    (Approx.Kcounter.create exec ~n ~k:(max 2 k) ()));
              for_impl "collect" (fun exec ~n ->
                  Counters.Collect_counter.handle
                    (Counters.Collect_counter.create exec ~n ())) ])
          [ 2; 4 ])
      [ 10_000; 100_000; 1_000_000 ]
  in
  Tables.print_table
    ~title:"perturbation rounds and reader's distinct base objects"
    ~header:[ "m (budget)"; "k"; "impl"; "rounds L"; "log_k(m)/2";
              "reader objects"; "log2 L"; "read steps" ]
    rows;
  print_endline
    "paper: rounds L = Theta(log_k m); the reader's final solo read must\n\
     touch at least log2 L distinct base objects (Theorem V.4's\n\
     Omega(min(log2 log_k m, n)) follows since L = Theta(log_k m))."

let run () =
  run_maxreg ();
  run_counter ()
