(* Minimal fixed-width table printing for the experiment harness. Every
   experiment prints one or more tables in the style of a paper's
   evaluation section. *)

let rule width = print_endline (String.make width '-')

let print_table ~title ~header rows =
  let columns = List.length header in
  let widths = Array.make columns 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) header;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < columns then widths.(i) <- max widths.(i)
              (String.length cell))
        row)
    rows;
  let total =
    Array.fold_left ( + ) 0 widths + (3 * (columns - 1))
  in
  print_newline ();
  print_endline title;
  rule total;
  let print_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then print_string " | ";
        Printf.printf "%-*s" widths.(i) cell)
      row;
    print_newline ()
  in
  print_row header;
  rule total;
  List.iter print_row rows;
  rule total

let fmt_float f =
  if Float.is_nan f then "-"
  else if Float.abs f >= 1000.0 then Printf.sprintf "%.0f" f
  else if Float.abs f >= 10.0 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.2f" f

let fmt_pow2 v =
  (* Render 2^e when v is an exact power of two (and big), else decimal. *)
  if v >= 4096 && Zmath.is_power ~base:2 v then
    Printf.sprintf "2^%d" (Zmath.floor_log ~base:2 v)
  else string_of_int v

let section name =
  print_newline ();
  print_endline (String.make 72 '=');
  Printf.printf "%s\n" name;
  print_endline (String.make 72 '=')
