(* E9: ablation of Algorithm 1's design choices (DESIGN.md §3).

   Three single-ingredient removals, each quantified:

   1. no-helping: without the helping array (paper lines 44-55), a slow
      reader racing announcing incrementers can take unboundedly many
      steps. We measure the reader's steps under a 1-reader-step-per-R
      incrementer-steps schedule until a step budget explodes.

   2. no-probe-resume: always re-probing an interval from its first switch
      (dropping the persistent l0 cursor of lines 22-24) inflates the cost
      of announces by up to k failed test&sets each.

   3. full-scan-read: reading every switch instead of the first/last of
      each interval inflates read cost by Theta(k) per interval.

   E10: the additive relaxation — the k-additive counter of [8]'s
   discussion, compared with Algorithm 1 at matched "budgets". *)

let starvation_steps ~variant_read ~incs =
  (* The incrementer gets 8 shared steps per reader step, so the switch
     frontier (which advances one position per announcement, i.e. per 2
     incrementer steps early on) stays ahead of the reader's scan until
     the incrementer exhausts its [incs] budget — announcements get
     exponentially expensive, so the frontier caps at ~2 log2(incs). The
     helped reader escapes after O(n) steps regardless; the no-helping
     reader must walk the whole frontier. *)
  let n = 2 and k = 2 in
  let exec = Sim.Exec.create ~trace_steps:false ~n () in
  let read_steps = ref (-1) in
  let reader_done = ref false in
  let incr_op, read_op = variant_read exec ~n ~k in
  let programs =
    [| (fun pid ->
         ignore (Sim.Api.op_int ~name:"read" (fun () -> read_op ~pid));
         reader_done := true);
       (fun pid ->
         for _ = 1 to incs do
           Sim.Api.op_unit ~name:"inc" (fun () -> incr_op ~pid)
         done) |]
  in
  let script =
    Array.concat
      (List.init 50_000 (fun _ -> Array.append (Array.make 8 1) [| 0 |]))
  in
  ignore
    (Sim.Exec.run exec ~programs
       ~policy:(Sim.Schedule.Script script)
       ~stop:(fun () -> !reader_done)
       ());
  List.iter
    (fun (name, _, worst, _) -> if name = "read" then read_steps := worst)
    (Sim.Exec.op_stats exec);
  (!read_steps, !reader_done)

let run_helping_ablation () =
  let with_helping exec ~n ~k =
    let c = Approx.Kcounter.create exec ~n ~k () in
    ((fun ~pid -> Approx.Kcounter.increment c ~pid),
     fun ~pid -> Approx.Kcounter.read c ~pid)
  in
  let without_helping exec ~n ~k =
    let c = Approx.Kcounter_variants.No_helping.create exec ~n ~k () in
    ((fun ~pid -> Approx.Kcounter_variants.No_helping.increment c ~pid),
     fun ~pid -> Approx.Kcounter_variants.No_helping.read c ~pid)
  in
  (* The starving reader's cost grows with the incrementer's work budget:
     the switch frontier stays ahead of the scan for ~log(total incs)
     positions. With helping the reader escapes after O(n) steps no matter
     how long the execution runs. *)
  let rows =
    List.map
      (fun incs ->
        let s1, d1 = starvation_steps ~variant_read:with_helping ~incs in
        let s2, d2 = starvation_steps ~variant_read:without_helping ~incs in
        [ Printf.sprintf "%d" incs;
          Printf.sprintf "%d%s" s1 (if d1 then "" else " (unfinished)");
          Printf.sprintf "%d%s" s2 (if d2 then "" else " (unfinished)") ])
      [ 1_000; 10_000; 100_000; 1_000_000; 10_000_000 ]
  in
  Tables.print_table
    ~title:"slow reader vs flooding incrementer (1:8 schedule)"
    ~header:[ "concurrent increments"; "reader steps (Alg 1)";
              "reader steps (no-helping)" ]
    rows;
  print_endline
    "paper: Lemma III.1's wait-freedom proof is exactly the helping\n\
     mechanism. With it the reader's cost is bounded once and for all;\n\
     without it the reader chases the switch frontier, paying more the\n\
     longer the incrementers have run."

let amortized_of ~make ~n ~k ~ops =
  let exec = Sim.Exec.create ~trace_steps:false ~n () in
  let counter = make exec ~n ~k in
  let script =
    Workload.Script.counter_mix ~seed:13 ~n ~ops_per_process:ops
      ~read_fraction:0.3
  in
  let programs = Workload.Script.counter_programs counter script in
  ignore (Sim.Exec.run exec ~programs ~policy:(Sim.Schedule.Random 13) ());
  (Sim.Exec.amortized exec, Sim.Exec.op_stats exec)

let stat_of stats name =
  match List.find_opt (fun (n, _, _, _) -> n = name) stats with
  | Some (_, _, worst, mean) -> (worst, mean)
  | None -> (0, Float.nan)

(* Solo incrementer: measures pure announce cost. With the l0 cursor each
   announce in an interval probes exactly one switch; without it the j-th
   announce re-probes the j-1 already-set switches first, a Theta(k)
   factor on total probe work. *)
let run_probe_ablation () =
  let total_inc_steps ~make ~k ~incs =
    let exec = Sim.Exec.create ~trace_steps:false ~n:1 () in
    let counter = make exec ~n:1 ~k in
    let program pid =
      for _ = 1 to incs do
        Sim.Api.op_unit ~name:"inc" (fun () -> counter.Obj_intf.c_inc ~pid)
      done
    in
    ignore
      (Sim.Exec.run exec ~programs:[| program |]
         ~policy:Sim.Schedule.Round_robin ());
    Sim.Exec.op_steps_total exec
  in
  let rows =
    List.map
      (fun k ->
        let incs = 2_000_000 in
        let with_cursor =
          total_inc_steps ~k ~incs ~make:(fun exec ~n ~k ->
              Approx.Kcounter.handle (Approx.Kcounter.create exec ~n ~k ()))
        in
        let without_cursor =
          total_inc_steps ~k ~incs ~make:(fun exec ~n ~k ->
              Approx.Kcounter_variants.No_probe_resume.handle
                (Approx.Kcounter_variants.No_probe_resume.create exec ~n ~k ()))
        in
        [ string_of_int k;
          string_of_int with_cursor;
          string_of_int without_cursor;
          Tables.fmt_float
            (float_of_int without_cursor /. float_of_int (max 1 with_cursor)) ])
      [ 4; 16; 64 ]
  in
  Tables.print_table
    ~title:"total announce steps, solo incrementer, 2M increments"
    ~header:[ "k"; "with l0 cursor (Alg 1)"; "without"; "ratio" ]
    rows;
  print_endline
    "paper: the cursor is what makes Lemma III.8's per-interval probe\n\
     accounting 2(i_p+1)k instead of Theta(i_p k^2): the ratio grows\n\
     with k."

let run_cost_ablation () =
  let variants =
    [ ("Algorithm 1",
       fun exec ~n ~k ->
         Approx.Kcounter.handle (Approx.Kcounter.create exec ~n ~k ()));
      ("no-probe-resume",
       fun exec ~n ~k ->
         Approx.Kcounter_variants.No_probe_resume.handle
           (Approx.Kcounter_variants.No_probe_resume.create exec ~n ~k ()));
      ("full-scan-read",
       fun exec ~n ~k ->
         Approx.Kcounter_variants.Full_scan_read.handle
           (Approx.Kcounter_variants.Full_scan_read.create exec ~n ~k ())) ]
  in
  let n = 16 in
  let rows =
    List.concat_map
      (fun k ->
        List.map
          (fun (label, make) ->
            let amortized, stats = amortized_of ~make ~n ~k ~ops:20_000 in
            let inc_worst, inc_mean = stat_of stats "inc" in
            let read_worst, read_mean = stat_of stats "read" in
            [ string_of_int k;
              label;
              Tables.fmt_float amortized;
              string_of_int inc_worst;
              Tables.fmt_float inc_mean;
              string_of_int read_worst;
              Tables.fmt_float read_mean ])
          variants)
      [ 4; 16 ]
  in
  Tables.print_table
    ~title:(Printf.sprintf
              "cost of dropping each ingredient (n = %d, 20k ops/process)" n)
    ~header:[ "k"; "variant"; "amortized"; "inc worst"; "inc mean";
              "read worst"; "read mean" ]
    rows;
  print_endline
    "paper: the l0 cursor is what caps a process's probes per interval at\n\
     k + 1 total (Lemma III.8's accounting); the first/last-only scan is\n\
     what caps read cost at 2 per interval (4(i+2) in the proof)."

let run_additive () =
  Tables.section
    "E10  Additive vs multiplicative relaxation (Section I-A, [8])";
  let n = 16 in
  let ops = 20_000 in
  let rows =
    List.concat_map
      (fun (label, make) ->
        List.map
          (fun k ->
            let amortized, stats =
              amortized_of
                ~make:(fun exec ~n ~k -> make exec ~n ~k)
                ~n ~k ~ops
            in
            let read_worst, _ = stat_of stats "read" in
            let _, inc_mean = stat_of stats "inc" in
            [ label; string_of_int k; Tables.fmt_float amortized;
              Tables.fmt_float inc_mean; string_of_int read_worst ])
          [ 4; 16; 64; 256 ])
      [ ("k-multiplicative (Alg 1)",
         fun exec ~n ~k ->
           Approx.Kcounter.handle
             (Approx.Kcounter.create exec ~n ~k:(max 2 k) ()));
        ("k-additive (flush batching)",
         fun exec ~n ~k ->
           Approx.Kadditive_counter.handle
             (Approx.Kadditive_counter.create exec ~n ~k ())) ]
  in
  Tables.print_table
    ~title:(Printf.sprintf "n = %d, 30%% reads" n)
    ~header:[ "relaxation"; "k"; "amortized"; "inc mean"; "read worst" ]
    rows;
  print_endline
    "shape: the additive counter's reads stay at n steps for every k (its\n\
     error budget only thins the increments), while the multiplicative\n\
     counter's reads are O(1) amortized -- the asymmetry behind the\n\
     paper's focus on the multiplicative relaxation (and [8]'s additive\n\
     lower bound Omega(min(n-1, log m - log k)))."

let run () =
  Tables.section "E9  Ablation of Algorithm 1's design choices";
  run_helping_ablation ();
  run_probe_ablation ();
  run_cost_ablation ();
  run_additive ()
