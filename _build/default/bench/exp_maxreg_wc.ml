(* E4 (Theorem IV.2 vs Theorem V.2): worst-case step complexity of the
   k-multiplicative-accurate bounded max register vs the exact bounded max
   register, as the bound m grows.

   Solo workload (worst-case probing): one process writes m-1 then reads;
   we report the worst-case steps of each operation. The paper predicts
   O(min(log2 log_k m, n)) for Algorithm 2 — an exponential improvement
   over the exact register's Theta(log2 m) — and the matching lower bound
   Omega(min(log2 log_k m, n)) shows the shape is optimal. *)

let solo_worst ~make_ops =
  let n = 64 in
  let exec = Sim.Exec.create ~n () in
  let ops = make_ops exec ~n in
  let program pid = if pid = 0 then ops pid in
  ignore
    (Sim.Exec.run exec
       ~programs:(Array.init n (fun _ -> program))
       ~policy:(Sim.Schedule.Solo 0) ());
  Sim.Metrics.worst_case (Sim.Exec.trace exec)

let kmaxreg_ops ~m ~k exec ~n =
  let mr = Approx.Kmaxreg.create exec ~n ~m ~k () in
  fun pid ->
    Sim.Api.op_unit ~name:"write" (fun () -> Approx.Kmaxreg.write mr ~pid (m - 1));
    ignore (Sim.Api.op_int ~name:"read" (fun () -> Approx.Kmaxreg.read mr ~pid))

let exact_ops ~m exec ~n:_ =
  let mr = Maxreg.Tree_maxreg.create exec ~m () in
  fun pid ->
    Sim.Api.op_unit ~name:"write" (fun () ->
        Maxreg.Tree_maxreg.write mr ~pid (m - 1));
    ignore
      (Sim.Api.op_int ~name:"read" (fun () -> Maxreg.Tree_maxreg.read mr ~pid))

(* Open-question exploration (Section VI): reads of an m-bounded
   k-multiplicative counter can be made worst-case optimal
   (O(min(log2 log_k m, n)), matching Theorem V.4) by placing Algorithm 2's
   register at the root of the exact AACH tree — see
   Approx.Kcounter_bounded. Increments keep the exact tree's cost. *)
let counter_read_worst ~make =
  let n = 64 in
  let exec = Sim.Exec.create ~n () in
  let counter = make exec ~n in
  let program pid =
    if pid = 0 then begin
      counter.Obj_intf.c_inc ~pid;
      ignore
        (Sim.Api.op_int ~name:"read" (fun () -> counter.Obj_intf.c_read ~pid))
    end
  in
  ignore
    (Sim.Exec.run exec
       ~programs:(Array.init n (fun _ -> program))
       ~policy:(Sim.Schedule.Solo 0) ());
  Sim.Metrics.worst_case ~name:"read" (Sim.Exec.trace exec)

let run_bounded_counter () =
  let rows =
    List.map
      (fun e ->
        let m = 1 lsl e in
        let approx =
          counter_read_worst ~make:(fun exec ~n ->
              Approx.Kcounter_bounded.handle
                (Approx.Kcounter_bounded.create exec ~n ~m ~k:2 ()))
        in
        let exact =
          counter_read_worst ~make:(fun exec ~n ->
              Counters.Bounded_tree_counter.handle
                (Counters.Bounded_tree_counter.create exec ~n ~m ()))
        in
        [ Tables.fmt_pow2 m;
          string_of_int approx;
          string_of_int (Zmath.ceil_log2 (e + 2));
          string_of_int exact;
          string_of_int e ])
      [ 8; 16; 32; 48 ]
  in
  Tables.print_table
    ~title:"bounded counter reads (open-question exploration, k = 2): \
            worst-case steps"
    ~header:[ "m"; "kcounter-bounded read"; "log2 log2 m"; "exact read";
              "log2 m" ]
    rows;
  print_endline
    "Section VI leaves the worst-case improvement for bounded k-mult\n\
     counters open. Reads can match Theorem V.4's Omega(min(log2 log_k m,\n\
     n)) bound (left columns); making increments equally cheap is the\n\
     part that remains open (ours stay at the exact tree's cost)."

let run () =
  Tables.section
    "E4  Worst-case step complexity of bounded max registers (Thm IV.2)\n\
     solo run: write(m-1) then read; n = 64";
  let rows =
    List.concat_map
      (fun e ->
        let m = 1 lsl e in
        List.map
          (fun k ->
            let approx = solo_worst ~make_ops:(kmaxreg_ops ~m ~k) in
            let exact = solo_worst ~make_ops:(exact_ops ~m) in
            let loglog =
              Zmath.ceil_log2 (Zmath.floor_log ~base:k (m - 1) + 2)
            in
            [ Tables.fmt_pow2 m;
              string_of_int k;
              string_of_int approx;
              string_of_int loglog;
              string_of_int exact;
              string_of_int e ])
          [ 2; 4; 16 ])
      [ 4; 8; 16; 24; 32; 40; 48 ]
  in
  Tables.print_table
    ~title:"worst-case steps per operation"
    ~header:[ "m"; "k"; "kmaxreg (Alg 2)"; "log2 log_k m"; "exact tree";
              "log2 m" ]
    rows;
  print_endline
    "paper: the Alg-2 column tracks log2 log_k m (its reference column)\n\
     while the exact register tracks log2 m: doubling the exponent of m\n\
     doubles the exact cost but adds O(1) to Alg 2's. Larger k shrinks\n\
     Alg 2's cost further.";
  run_bounded_counter ()
