(* E3 (Theorem III.11 / Corollary III.10.1): the awareness-set lower bound,
   measured. Workload: every process does one increment then one read.

   Columns:
     events        total primitive steps of the execution
     n*log(n/k^2)  the Theorem III.11 lower-bound shape
     aw[n/2]       the floor(n/2)-th largest awareness-set size
     n/(2k^2)      the Corollary III.10.1 bound on aw[n/2]

   Both implementations must satisfy the corollary; the gap between
   `events` and the bound shows how tight each implementation is. *)

(* [correct ~n] says whether the implementation is a correct
   k-multiplicative counter for that n: Corollary III.10.1 only applies to
   correct implementations. Algorithm 1 requires k >= sqrt(n); the exact
   collect counter is correct for every k >= 1. *)
let impls ~k =
  [ ("kcounter",
     (fun exec ~n ->
        Approx.Kcounter.handle
          (Approx.Kcounter.create exec ~n ~k:(max 2 k) ())),
     fun ~n -> Approx.Accuracy.valid_k ~k:(max 2 k) ~n);
    ("collect",
     (fun exec ~n ->
        Counters.Collect_counter.handle
          (Counters.Collect_counter.create exec ~n ())),
     fun ~n:_ -> true) ]

(* The arity effect behind Theorem III.11's log_{q+1} base: with arity-q
   conditional primitives a process can merge the awareness of q base
   objects in a single step, so awareness can grow by a factor (q+1) per
   "round". We measure the steps a gossip protocol needs until every
   process is aware of everyone: processes repeatedly pick q cells
   (round-robin over a fixed pattern), k-CAS them to republish their
   current knowledge, and we count steps until full awareness. *)
let gossip_rounds ~n ~q =
  let exec = Sim.Exec.create ~track_awareness:true ~n () in
  let mem = Sim.Exec.memory exec in
  let cells = Sim.Memory.alloc_many mem ~name:"g" n (Sim.Memory.V_int 0) in
  let steps_to_full = ref None in
  let program pid =
    (* Publish self, then touch q distinct cells per step with an
       always-applying k-CAS. The expected values are supplied via
       [Memory.peek] — a simulator-level convenience that keeps every
       k-CAS at its change point so each step is a visible arity-q event;
       the demonstration measures information flow, not algorithmics. *)
    Sim.Api.write cells.(pid) 1;
    (* Hypercube-style gossip: in round r, touch the q cells at offsets
       j * (q+1)^(r-1); awareness multiplies by up to (q+1) per round, so
       full awareness takes ~log_{q+1} n rounds. *)
    for round = 1 to 64 do
      let stride =
        match Zmath.pow_opt (q + 1) (round - 1) with
        | Some s -> s mod n
        | None -> 1
      in
      let targets =
        List.init q (fun j -> (pid + ((j + 1) * max 1 stride)) mod n)
        |> List.sort_uniq compare
        |> List.filter (fun c -> c <> pid)
      in
      (* Set strictly fresh values so the event is visible (publishing the
         caller's awareness); expectations are peeked at request time and
         can be one turn stale, so retry until the k-CAS applies. *)
      let rec publish () =
        let entries =
          List.map
            (fun c ->
              let id = cells.(c) in
              let current = Sim.Memory.peek mem id in
              (id, current, Sim.Memory.V_int (Sim.Memory.int_exn current + 1)))
            targets
        in
        if not (Sim.Api.kcas entries) then publish ()
      in
      if targets <> [] then publish ();
      match !steps_to_full with
      | Some _ -> ()
      | None ->
        let aw = Option.get (Sim.Exec.awareness exec) in
        if Sim.Awareness.awareness_size aw pid >= n then
          steps_to_full := Some (Sim.Exec.steps_total exec)
    done
  in
  ignore
    (Sim.Exec.run exec ~programs:(Array.make n program)
       ~policy:Sim.Schedule.Round_robin
       ~stop:(fun () -> !steps_to_full <> None)
       ());
  match !steps_to_full with
  | Some s -> s
  | None -> -1

let run_arity () =
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun q -> string_of_int (gossip_rounds ~n ~q))
             [ 1; 2; 4 ])
      [ 16; 64; 256 ]
  in
  Tables.print_table
    ~title:"steps until some process is aware of all n (gossip over \
            arity-q k-CAS)"
    ~header:[ "n"; "q=1"; "q=2"; "q=4" ]
    rows;
  print_endline
    "shape: higher arity merges awareness faster -- the log_{q+1} base in\n\
     Theorem III.11's Omega(n log_{q+1}(n/k^2)). (Steps shrink roughly by\n\
     the ratio of log(q+1) factors as q grows.)"

let run () =
  Tables.section
    "E3  Awareness sets and total events (Theorem III.11, Cor III.10.1)\n\
     workload: each process: 1 increment then 1 read; random schedule";
  List.iter
    (fun k ->
      let rows =
        List.concat_map
          (fun n ->
            List.map
              (fun (label, make, correct) ->
                let r =
                  Lowerbound.Awareness_exp.run ~make ~n ~k:(max 1 k)
                    ~policy:(Sim.Schedule.Random 5)
                in
                let verdict =
                  if not (correct ~n) then "n/a (k<sqrt n)"
                  else if float_of_int r.top_half_min >= r.awareness_bound
                  then "yes"
                  else "VIOLATED"
                in
                [ string_of_int n;
                  label;
                  string_of_int r.total_events;
                  Tables.fmt_float r.events_bound;
                  string_of_int r.top_half_min;
                  Tables.fmt_float r.awareness_bound;
                  verdict ])
              (impls ~k))
          [ 8; 16; 32; 64; 128; 256 ]
      in
      Tables.print_table
        ~title:(Printf.sprintf "k = %d" k)
        ~header:[ "n"; "impl"; "events"; "n*log2(n/k^2)"; "aw[n/2]";
                  "n/(2k^2)"; "cor holds" ]
        rows)
    [ 2; 4 ];
  print_endline
    "paper: any CORRECT solo-terminating k-multiplicative counter from\n\
     read/write/conditional primitives has executions with\n\
     Omega(n log(n/k^2)) events, and n/2 processes must become aware of\n\
     n/(2k^2) others. 'n/a' rows run Algorithm 1 outside its k >= sqrt(n)\n\
     regime, where it is no longer a correct k-multiplicative counter --\n\
     and, tellingly, its awareness sets drop below the corollary's bound\n\
     exactly there (the mechanism behind the Theorem III.11 trade-off:\n\
     cheap executions are only possible while n/(2k^2) is trivial).";
  run_arity ()
