(* F1 (Figure 1): switch states during a CounterRead, reproducing the three
   cases of the proof of Claim III.6 with k = 4.

   Figure 1 shows the (q+1)-th interval of consecutive switches
   [qk+1 .. (q+1)k] at the moment a read returns ReturnValue(p, q):

     a)   p = 0: the read saw switch_{qk} = 1 and switch_{qk+1} = 0 — the
          interval is untouched as far as the reader knows.
     b.1) p = 1: switch_{qk+1} = 1 and switch_{(q+1)k} = 0, with the
          interior switches still 0.
     b.2) p = 1: same reader observations, but the interior switches were
          concurrently set — the reader cannot distinguish b.1 from b.2,
          which is exactly why u_max includes the p(k-1)k^(q+1) term.

   We drive a writer process to the required switch frontier, run the
   reader, and dump the actual shared state next to the reader's return
   value. *)

let k = 4

(* Drive `incs` increments by the writer (pid 0) solo, then a read by pid 1
   solo; return (switch dump, read result). *)
let scenario ~incs =
  let n = 2 in
  let exec = Sim.Exec.create ~n () in
  let counter = Approx.Kcounter.create exec ~n ~k () in
  let result = ref 0 in
  let programs =
    [| (fun pid ->
         for _ = 1 to incs do
           Sim.Api.op_unit ~name:"inc" (fun () ->
               Approx.Kcounter.increment counter ~pid)
         done);
       (fun pid ->
         result :=
           Sim.Api.op_int ~name:"read" (fun () ->
               Approx.Kcounter.read counter ~pid)) |]
  in
  ignore
    (Sim.Exec.run exec ~programs
       ~policy:(Sim.Schedule.Seq [ Sim.Schedule.Solo 0; Sim.Schedule.Solo 1 ])
       ());
  (Approx.Kcounter.switch_states counter, !result)

let render states =
  let max_index =
    List.fold_left (fun acc (i, _) -> max acc i) 0 states
  in
  let bit i =
    match List.assoc_opt i states with
    | Some b -> string_of_int b
    | None -> "0"
  in
  let buf = Buffer.create 64 in
  for i = 0 to max_index + 2 do
    if i > 0 && (i - 1) mod k = 0 then Buffer.add_string buf "| ";
    Buffer.add_string buf (bit i);
    Buffer.add_char buf ' '
  done;
  Buffer.add_string buf "...   (intervals of k switches delimited by |)";
  Buffer.contents buf

let case ~label ~incs =
  let states, result = scenario ~incs in
  Printf.printf "%s  after %d increments by one process:\n" label incs;
  Printf.printf "   switches: %s\n" (render states);
  Printf.printf "   read returns %d\n\n" result

let run () =
  Tables.section
    "F1  Figure 1: switch-interval states seen by a CounterRead (k = 4)";
  print_newline ();
  (* Case a: the writer exhausts interval q (sets its last switch) but has
     not touched interval q+1: reader stops with p = 0.
     With k=4: switch_0 at inc 1; interval [1..4] switches at incs
     5, 9, 13, 17; interval [5..8] needs 16 incs each. After 17 increments
     exactly, switches 0..4 are set and switch_5 is 0. *)
  case ~label:"a)  p=0:" ~incs:17;
  (* Case b.1: the writer sets the first switch of interval 2 ([5..8]) and
     stops: 17 + 16 = 33 increments. Reader sees switch_5 = 1 and
     switch_8 = 0 with the interior untouched. *)
  case ~label:"b.1) p=1:" ~incs:33;
  (* Case b.2: interior switches of the interval also set (two more
     announcements, 16 incs each): 33 + 32 = 65 increments. The reader
     still only checks the first and last switch of the interval, so it
     returns the same value as b.1 even though more increments landed. *)
  case ~label:"b.2) p=1:" ~incs:65;
  print_endline
    "paper: in b.2 the reader returns the same value as in b.1 because it\n\
     only inspects the first and last switch of each interval -- the\n\
     u_max slack of Claim III.6."
