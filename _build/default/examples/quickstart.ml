(* Quickstart: create the paper's two objects in the step-counting
   simulator, run a small concurrent workload, and print what you get.

     dune exec examples/quickstart.exe

   Walks through: building an execution, allocating a
   k-multiplicative-accurate counter (Algorithm 1) and max register
   (Algorithm 2), running processes under a schedule, and inspecting
   accuracy + step metrics. *)

let () =
  let n = 4 in
  (* Algorithm 1's accuracy guarantee needs k >= sqrt(n). *)
  let k = Zmath.ceil_sqrt n in
  Printf.printf "== k-multiplicative-accurate counter (n=%d, k=%d) ==\n" n k;

  let exec = Sim.Exec.create ~n () in
  let counter = Approx.Kcounter.create exec ~n ~k () in

  (* Each process: 1000 increments, then one read. *)
  let reads = Array.make n 0 in
  let program pid =
    for _ = 1 to 1_000 do
      Sim.Api.op_unit ~name:"inc" (fun () ->
          Approx.Kcounter.increment counter ~pid)
    done;
    reads.(pid) <-
      Sim.Api.op_int ~name:"read" (fun () -> Approx.Kcounter.read counter ~pid)
  in
  let outcome =
    Sim.Exec.run exec ~programs:(Array.make n program)
      ~policy:(Sim.Schedule.Random 2024) ()
  in

  let true_count = n * 1_000 in
  Array.iteri
    (fun pid x ->
      Printf.printf "  process %d read %d (true count %d, within [v/k, v*k]: %b)\n"
        pid x true_count
        (Approx.Accuracy.within ~k ~exact:true_count x))
    reads;
  Printf.printf "  total steps: %d, amortized steps/op: %.2f\n" outcome.steps_total
    (Sim.Metrics.amortized (Sim.Exec.trace exec));

  Printf.printf "\n== k-multiplicative-accurate max register (m=2^20, k=2) ==\n";
  let exec2 = Sim.Exec.create ~n () in
  let m = 1 lsl 20 in
  let mr = Approx.Kmaxreg.create exec2 ~n ~m ~k:2 () in
  let final = Array.make n 0 in
  let program2 pid =
    (* Process pid writes pid-flavoured values. *)
    List.iter
      (fun v ->
        Sim.Api.op_unit ~name:"write" ~arg:v (fun () ->
            Approx.Kmaxreg.write mr ~pid v))
      [ (pid + 1) * 100; (pid + 1) * 3_000; (pid + 1) * 77 ];
    final.(pid) <-
      Sim.Api.op_int ~name:"read" (fun () -> Approx.Kmaxreg.read mr ~pid)
  in
  ignore
    (Sim.Exec.run exec2 ~programs:(Array.make n program2)
       ~policy:Sim.Schedule.Round_robin ());
  let true_max = n * 3_000 in
  Array.iteri
    (fun pid x ->
      Printf.printf "  process %d read %d (true max %d; guaranteed v < x <= v*k)\n"
        pid x true_max)
    final;
  Printf.printf "  worst-case steps of any op: %d (exact register would need ~%d)\n"
    (Sim.Metrics.worst_case (Sim.Exec.trace exec2))
    (Zmath.ceil_log2 m);

  Printf.printf "\nDone. See examples/telemetry.ml and examples/watermark.ml \
                 for the multicore API,\nand examples/adversary.ml for \
                 adversarial schedules and the linearizability checker.\n"
