(* Modelcheck: the verification workflow for your own object.

     dune exec examples/modelcheck.exe

   Walks the three tiers of checking this repository provides, using a
   deliberately buggy counter as the target:

   1. randomized schedules + the linearizability checker (fast, incomplete)
   2. PCT schedules (bug-depth-directed randomization)
   3. exhaustive interleaving exploration (complete, for tiny configs)

   The buggy object is a "lazy counter" whose read returns the value of a
   cached cell refreshed only by increments — reads can then miss
   increments completed before they started, which is not linearizable.
   The bug needs a specific interleaving, so random search may miss it
   while the explorer cannot. *)

(* The buggy object: inc bumps a shared cell, then refreshes the cache;
   read returns the cache. A read that runs after an inc I completed but
   before I's cache refresh is scheduled... cannot happen (refresh is part
   of inc) — the bug is subtler: two concurrent incs can refresh the cache
   with a stale sum, so a later read returns less than the number of
   completed incs. *)
module Lazy_counter = struct
  type t = { cell : Sim.Memory.obj_id; cache : Sim.Memory.obj_id }

  let create exec =
    let mem = Sim.Exec.memory exec in
    { cell = Sim.Memory.alloc mem ~name:"cell" (Sim.Memory.V_int 0);
      cache = Sim.Memory.alloc mem ~name:"cache" (Sim.Memory.V_int 0) }

  let increment t ~pid:_ =
    let v = Sim.Api.faa t.cell 1 in
    (* BUG: writes the pre-increment value + 1 it observed, which may be
       stale by the time it lands; a correct implementation would
       write-max or re-read. *)
    Sim.Api.write t.cache (v + 1)

  let read t ~pid:_ = Sim.Api.read t.cache

  let handle t =
    { Obj_intf.c_label = "lazy-counter";
      c_inc = (fun ~pid -> increment t ~pid);
      c_read = (fun ~pid -> read t ~pid) }
end

let build () =
  let exec = Sim.Exec.create ~n:3 () in
  let counter = Lazy_counter.create exec in
  let programs =
    Workload.Script.counter_programs (Lazy_counter.handle counter)
      [| [ Inc ]; [ Inc ]; [ Read ] |]
  in
  (exec, programs)

let check_one policy =
  let exec, programs = build () in
  ignore (Sim.Exec.run exec ~programs ~policy ());
  match
    Lincheck.Checker.check_trace Lincheck.Spec.exact_counter
      (Sim.Exec.trace exec)
  with
  | Lincheck.Checker.Linearizable _ -> true
  | Lincheck.Checker.Not_linearizable -> false

let () =
  print_endline "Target: a 'lazy counter' with a stale-cache-refresh bug.";
  print_endline "Workload: p0: inc; p1: inc; p2: read.\n";

  (* Tier 1: random search *)
  let random_found = ref None in
  for seed = 1 to 100 do
    if !random_found = None && not (check_one (Sim.Schedule.Random seed))
    then random_found := Some seed
  done;
  (match !random_found with
   | Some seed ->
     Printf.printf "tier 1 (random): violation found at seed %d/100\n" seed
   | None ->
     print_endline "tier 1 (random): no violation in 100 seeds");

  (* Tier 2: PCT with depth 4 over the run length *)
  let pct_found = ref None in
  for seed = 1 to 100 do
    if !pct_found = None
       && not
            (check_one
               (Sim.Schedule.Pct
                  { seed; change_points = 4; expected_length = 6 }))
    then pct_found := Some seed
  done;
  (match !pct_found with
   | Some seed ->
     Printf.printf "tier 2 (PCT d=4): violation found at seed %d/100\n" seed
   | None -> print_endline "tier 2 (PCT d=4): no violation in 100 seeds");

  (* Tier 3: exhaustive *)
  let stats =
    Lincheck.Explore.exhaustive ~build ~spec:Lincheck.Spec.exact_counter ()
  in
  Printf.printf
    "tier 3 (exhaustive): %d violations over all %d interleavings\n"
    stats.Lincheck.Explore.violations stats.Lincheck.Explore.executions;
  (match stats.Lincheck.Explore.first_violation with
   | Some schedule ->
     Printf.printf "  witness schedule: %s\n"
       (String.concat " " (Array.to_list (Array.map string_of_int schedule)));
     (* Replay the witness and show the offending history. *)
     let exec, programs = build () in
     ignore
       (Sim.Exec.run exec ~programs ~policy:(Sim.Schedule.Script schedule) ());
     print_endline "  witness history:";
     Array.iter
       (fun op -> Format.printf "    %a@." Lincheck.History.pp_op op)
       (Lincheck.History.of_trace (Sim.Exec.trace exec));
     print_endline "  witness timeline:";
     String.split_on_char '\n'
       (Lincheck.Render.timeline ~width:60 (Sim.Exec.trace exec))
     |> List.iter (fun line ->
            if line <> "" then Printf.printf "    %s\n" line)
   | None -> print_endline "  (no witness — object is correct)");

  print_endline
    "\nFor real objects in this repository the same pipeline reports zero\n\
     violations (bench/main.exe e11); the erratum hunt in\n\
     test/test_erratum.ml used exactly this workflow."
