examples/adversary.ml: Approx Array Float Format Lincheck List Lowerbound Maxreg Option Printf Sim String Workload
