examples/modelcheck.mli:
