examples/quickstart.ml: Approx Array List Printf Sim Zmath
