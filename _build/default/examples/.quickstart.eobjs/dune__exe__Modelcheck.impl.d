examples/modelcheck.ml: Array Format Lincheck List Obj_intf Printf Sim String Workload
