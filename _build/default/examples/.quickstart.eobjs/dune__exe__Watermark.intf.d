examples/watermark.mli:
