examples/watermark.ml: Approx Array List Maxreg Mcore Printf Sim
