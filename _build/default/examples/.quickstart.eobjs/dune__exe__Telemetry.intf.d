examples/telemetry.mli:
