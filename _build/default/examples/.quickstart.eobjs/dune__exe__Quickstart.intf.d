examples/quickstart.mli:
