examples/telemetry.ml: Float Mcore Printf
