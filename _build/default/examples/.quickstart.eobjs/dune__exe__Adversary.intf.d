examples/adversary.mli:
