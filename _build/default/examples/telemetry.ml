(* Telemetry: scalable statistics counters on real domains.

     dune exec examples/telemetry.exe

   The motivating workload of relaxed counters (Dice, Lev & Moir,
   "Scalable statistics counters", SPAA'13 — cited by the paper): a server
   counts events (requests, cache hits, errors) from many cores. Exact
   shared counters serialise every increment; a k-multiplicative-accurate
   counter trades bounded relative error for increments that are almost
   always core-local.

   This example runs a simulated HTTP-server metric pipeline on OCaml
   domains: each worker domain handles "requests" and bumps three metrics;
   a monitor thread (the main domain, after the run) reads them. We compare
   the k-multiplicative counter against a fetch&add cell and a lock-based
   counter, printing accuracy and throughput. *)

type metrics = {
  requests_k : Mcore.Mc_kcounter.t;
  requests_faa : Mcore.Mc_baselines.Faa_counter.t;
  requests_lock : Mcore.Mc_baselines.Lock_counter.t;
  cache_hits : Mcore.Mc_kcounter.t;
  errors : Mcore.Mc_kcounter.t;
}

let () =
  let domains = 4 in
  let requests_per_domain = 200_000 in
  let k = 2 (* >= sqrt(4) *) in
  let m =
    { requests_k = Mcore.Mc_kcounter.create ~n:domains ~k ();
      requests_faa = Mcore.Mc_baselines.Faa_counter.create ();
      requests_lock = Mcore.Mc_baselines.Lock_counter.create ();
      cache_hits = Mcore.Mc_kcounter.create ~n:domains ~k ();
      errors = Mcore.Mc_kcounter.create ~n:domains ~k () }
  in
  Printf.printf
    "Simulating %d worker domains x %d requests (k=%d counters)...\n%!"
    domains requests_per_domain k;

  (* Each "request" bumps the request counters; 30%% are cache hits; 1 in
     1000 errors. The deterministic per-domain pattern keeps totals exact
     for the accuracy report. *)
  let result =
    Mcore.Throughput.run ~domains ~ops_per_domain:requests_per_domain
      ~worker:(fun ~pid ~op_index ->
        Mcore.Mc_kcounter.increment m.requests_k ~pid;
        Mcore.Mc_baselines.Faa_counter.increment m.requests_faa;
        Mcore.Mc_baselines.Lock_counter.increment m.requests_lock;
        if op_index mod 10 < 3 then
          Mcore.Mc_kcounter.increment m.cache_hits ~pid;
        if op_index mod 1000 = 0 then
          Mcore.Mc_kcounter.increment m.errors ~pid)
  in

  let total = domains * requests_per_domain in
  let report name approx exact =
    let err =
      if exact = 0 then 0.0
      else Float.abs (float_of_int approx /. float_of_int exact -. 1.0)
    in
    Printf.printf "  %-12s approx=%-10d exact=%-10d rel.err=%.2f (bound: x%d)\n"
      name approx exact err k
  in
  Printf.printf "\nMetric report (monitor read after quiescence):\n";
  report "requests" (Mcore.Mc_kcounter.read m.requests_k ~pid:0) total;
  report "cache_hits"
    (Mcore.Mc_kcounter.read m.cache_hits ~pid:0)
    (domains * (requests_per_domain / 10 * 3));
  report "errors"
    (Mcore.Mc_kcounter.read m.errors ~pid:0)
    (domains * ((requests_per_domain + 999) / 1000));
  Printf.printf "  (faa=%d lock=%d -- both exact, both serialise every bump)\n"
    (Mcore.Mc_baselines.Faa_counter.read m.requests_faa)
    (Mcore.Mc_baselines.Lock_counter.read m.requests_lock);

  Printf.printf "\nPipeline throughput: %.2f Mops/s over %.3f s\n"
    (result.ops_per_sec /. 1_000_000.0)
    result.elapsed_s;
  Printf.printf
    "(Each worker op above bumps 3-5 counters; see bench/main.exe mc for \
     per-implementation numbers.)\n";

  (* Why it scales: increments touch shared memory only when the local
     threshold is crossed. Count how rarely that is. *)
  let shared_touches = Mcore.Mc_kcounter.switches_set m.requests_k in
  Printf.printf
    "\nShared-memory writes by %d k-counter increments: ~%d switch sets \
     (the rest were process-local).\n"
    total shared_touches
