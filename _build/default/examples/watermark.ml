(* Watermark: high-watermark tracking with approximate max registers.

     dune exec examples/watermark.exe

   Max registers are the natural object for monotone watermarks: the
   largest sequence number applied to a replica, the worst latency seen,
   the peak queue depth. When the consumer only needs the order of
   magnitude (alerting thresholds, backpressure bands), the
   k-multiplicative-accurate register gives an exponentially cheaper read
   path (Theorem IV.2: O(log log m) vs Theta(log m)).

   This example tracks the peak latency (in microseconds) observed by
   parallel workers, with an exact CAS-loop register and the k=2 register
   side by side, then shows the simulated step costs for both. *)

let () =
  let domains = 4 in
  let samples_per_domain = 100_000 in
  let m = 1 lsl 30 in
  let k = 2 in

  let exact = Mcore.Mc_baselines.Cas_maxreg.create () in
  let approx = Mcore.Mc_kmaxreg.create ~m ~k () in

  (* Deterministic synthetic latency trace: a heavy-tailed-ish pattern with
     a known global maximum, so we can score accuracy afterwards. *)
  let latency ~pid ~op_index =
    let base = 100 + ((op_index * 7 + pid * 13) mod 900) in
    let spike =
      if op_index mod 10_000 = 9_999 then (op_index / 10) + (pid * 50_000)
      else 0
    in
    base + spike
  in
  let true_peak = ref 0 in
  for pid = 0 to domains - 1 do
    for op_index = 0 to samples_per_domain - 1 do
      true_peak := max !true_peak (latency ~pid ~op_index)
    done
  done;

  Printf.printf "Tracking peak latency across %d domains x %d samples...\n%!"
    domains samples_per_domain;
  let result =
    Mcore.Throughput.run ~domains ~ops_per_domain:samples_per_domain
      ~worker:(fun ~pid ~op_index ->
        let l = latency ~pid ~op_index in
        Mcore.Mc_baselines.Cas_maxreg.write exact l;
        Mcore.Mc_kmaxreg.write approx l)
  in

  let x_exact = Mcore.Mc_baselines.Cas_maxreg.read exact in
  let x_approx = Mcore.Mc_kmaxreg.read approx in
  Printf.printf "\n  true peak        : %d us\n" !true_peak;
  Printf.printf "  exact register   : %d us\n" x_exact;
  Printf.printf "  k=2 register     : %d us (guaranteed in (peak, peak*%d])\n"
    x_approx k;
  Printf.printf "  updates/s        : %.2f M\n"
    (result.ops_per_sec /. 1_000_000.0);

  (* The asymptotic story, measured exactly in the simulator. *)
  Printf.printf
    "\nStep complexity in the shared-memory model (simulator, m = 2^30):\n";
  (* n = 8 so the bounded-register dispatch picks the tree branch and the
     O(log2 log_k m) shape is visible (with n = 1 it would pick the O(n)
     collect and report one step). *)
  let exec = Sim.Exec.create ~n:8 () in
  let exact_sim = Maxreg.Tree_maxreg.create exec ~m () in
  let approx_sim = Approx.Kmaxreg.create exec ~n:8 ~m ~k () in
  let program pid =
    Sim.Api.op_unit ~name:"exact-write" (fun () ->
        Maxreg.Tree_maxreg.write exact_sim ~pid (m - 1));
    ignore
      (Sim.Api.op_int ~name:"exact-read" (fun () ->
           Maxreg.Tree_maxreg.read exact_sim ~pid));
    Sim.Api.op_unit ~name:"approx-write" (fun () ->
        Approx.Kmaxreg.write approx_sim ~pid (m - 1));
    ignore
      (Sim.Api.op_int ~name:"approx-read" (fun () ->
           Approx.Kmaxreg.read approx_sim ~pid))
  in
  ignore
    (Sim.Exec.run exec ~programs:(Array.init 8 (fun i -> if i = 0 then program else fun _ -> ())) ~policy:Sim.Schedule.Round_robin
       ());
  List.iter
    (fun (name, _, worst, _) ->
      Printf.printf "  %-12s worst-case steps: %d\n" name worst)
    (Sim.Metrics.by_name (Sim.Exec.trace exec))
