(* Adversary: what the accuracy guarantee does and does not promise.

     dune exec examples/adversary.exe

   Three demonstrations on the simulator:

   1. The linearizability checker validating Algorithm 1's histories
      against the relaxed k-counter specification.
   2. The k >= sqrt(n) precondition is real: with k far below sqrt(n), an
      adversarial schedule drives reads outside the envelope relative to
      the number of increments (every process hoards announcements).
   3. The perturbation adversary of Section V driving an exact max
      register through Theta(log_k m) response changes, next to the
      k-multiplicative register whose reader touches exponentially fewer
      base objects. *)

let pf = Printf.printf

let demo_lincheck () =
  pf "== 1. Machine-checked linearizability ==\n";
  let n = 3 and k = 2 in
  let exec = Sim.Exec.create ~n () in
  let counter = Approx.Kcounter.create exec ~n ~k () in
  let script =
    Workload.Script.counter_mix ~seed:7 ~n ~ops_per_process:4
      ~read_fraction:0.5
  in
  let programs =
    Workload.Script.counter_programs (Approx.Kcounter.handle counter) script
  in
  ignore (Sim.Exec.run exec ~programs ~policy:(Sim.Schedule.Random 7) ());
  let ops = Lincheck.History.of_trace (Sim.Exec.trace exec) in
  pf "  history (%d ops):\n" (Array.length ops);
  Array.iter (fun op -> Format.printf "    %a@." Lincheck.History.pp_op op) ops;
  (match Lincheck.Checker.check (Lincheck.Spec.k_counter ~k) ops with
   | Lincheck.Checker.Linearizable witness ->
     pf "  linearizable; witness order: %s\n"
       (String.concat " " (List.map string_of_int witness))
   | Lincheck.Checker.Not_linearizable -> pf "  NOT linearizable (bug!)\n")

let demo_small_k () =
  pf "\n== 2. The k >= sqrt(n) precondition matters ==\n";
  (* n processes each perform `burst` increments; an adversarial schedule
     lets every process stop just below its announce threshold, so all
     increments stay invisible. A read then returns far less than v/k when
     n is large relative to k^2. *)
  let demo ~n ~k =
    let exec = Sim.Exec.create ~n () in
    let counter = Approx.Kcounter.create exec ~n ~k () in
    let burst = (k * k) - 1 in
    (* below the k^2 announce threshold, after the switch_0 + interval-1
       phases: each process announces at 1, then k, then k^2... we stop
       every process right before its k^2-th increment. *)
    let reader_result = ref None in
    let programs =
      Array.init n (fun i ->
          if i = n - 1 then fun pid ->
            reader_result :=
              Some
                (Sim.Api.op_int ~name:"read" (fun () ->
                     Approx.Kcounter.read counter ~pid))
          else fun pid ->
            for _ = 1 to burst + k + 1 do
              Sim.Api.op_unit ~name:"inc" (fun () ->
                  Approx.Kcounter.increment counter ~pid)
            done)
    in
    (* All incrementers run to completion, then the reader. *)
    let policy =
      Sim.Schedule.Seq
        (List.init n (fun pid -> Sim.Schedule.Solo pid))
    in
    ignore (Sim.Exec.run exec ~programs ~policy ());
    let v = (n - 1) * (burst + k + 1) in
    let x = Option.get !reader_result in
    pf "  n=%-3d k=%d: true count %-5d read %-5d within envelope: %b\n" n k v x
      (Approx.Accuracy.within ~k ~exact:v x)
  in
  demo ~n:4 ~k:2;
  (* k = 2 >= sqrt(4): holds *)
  demo ~n:64 ~k:2;
  (* k = 2 << sqrt(64) = 8: the guarantee is void and the read is stale *)
  demo ~n:64 ~k:8;
  (* k = 8 = sqrt(64): holds again *)
  pf "  (The middle line shows reads may fall below v/k when k < sqrt n.)\n"

let demo_perturbation () =
  pf "\n== 3. Perturbation adversary (Section V) ==\n";
  let m = 1 lsl 30 and k = 2 in
  let run label make =
    let rounds = Lowerbound.Perturb.perturb_maxreg ~make ~m ~k in
    let last = List.nth rounds (List.length rounds - 1) in
    pf "  %-16s rounds=%-3d final read touches %d distinct base objects \
        (log2 rounds = %.1f)\n"
      label (List.length rounds)
      last.Lowerbound.Perturb.distinct_objects
      (Float.log (float_of_int (List.length rounds)) /. Float.log 2.0)
  in
  run "exact maxreg" (fun exec ~n:_ ->
      Maxreg.Tree_maxreg.handle (Maxreg.Tree_maxreg.create exec ~m ()));
  run "k-mult maxreg" (fun exec ~n ->
      Approx.Kmaxreg.handle (Approx.Kmaxreg.create exec ~n ~m ~k ()));
  pf "  (Both obey the Omega(log2 L) bound; the approximate register \
      nearly meets it.)\n"

let () =
  demo_lincheck ();
  demo_small_k ();
  demo_perturbation ()
