#!/bin/sh
# CI check: formatting, build, tests (which include the perf-pipeline
# smoke test), and a fresh smoke BENCH record. Run from the repo root.
set -e

echo "== dune build @fmt (dune files; ocamlformat is not installed) =="
dune build @fmt

echo "== dune build =="
dune build

echo "== dune runtest (includes bench smoke) =="
dune runtest

echo "== backend functor-instantiation smoke matrix =="
dune exec bin/approx_cli.exe -- backends

echo "== bench pipeline smoke (CLI path) + perf regression guard =="
# Floor: the committed BENCH_2 kcounter read-heavy domains=1 median.
# The validated-cache read path must not regress below the last
# committed record even in the smoke configuration.
FLOOR=$(awk '/"object":/ { obj = ($2 ~ /kcounter/) }
  obj && /"workload":/ { rh = ($2 ~ /read-heavy/) }
  obj && rh && /"ops_per_sec_median":/ { gsub(/,/,"",$2); print $2; exit }' \
  BENCH_2.json)
[ -n "$FLOOR" ] || { echo "could not extract the BENCH_2 floor"; exit 1; }
echo "   (floor: kcounter read-heavy median >= $FLOOR ops/s)"
dune exec bin/approx_cli.exe -- bench --smoke --out /tmp/BENCH_ci_smoke.json \
  --check-floor "$FLOOR" > /dev/null
grep -q '"schema_version": 4' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record is not schema_version 4"; exit 1; }
grep -q '"fastpath"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the fastpath experiment"; exit 1; }
grep -q '"read_ablation"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the read ablation"; exit 1; }
grep -q '"inc_batching"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the inc batching sweep"; exit 1; }
grep -q '"service_io"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the I/O-plane sweep"; exit 1; }
grep -q '"io_domains": 2' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the io_domains=2 cell"; exit 1; }
grep -q '"effective_cores"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing host core detection"; exit 1; }
rm -f /tmp/BENCH_ci_smoke.json

echo "== unknown subcommand exits 2 with usage on stderr =="
set +e
dune exec bin/approx_cli.exe -- frobnicate >/tmp/approx_ci_out.txt \
  2>/tmp/approx_ci_err.txt
code=$?
set -e
[ "$code" -eq 2 ] || { echo "expected exit 2, got $code"; exit 1; }
grep -q "usage: approx_cli COMMAND" /tmp/approx_ci_err.txt \
  || { echo "usage missing from stderr"; exit 1; }
rm -f /tmp/approx_ci_out.txt /tmp/approx_ci_err.txt

echo "== service smoke: 2-shard, 2-io-domain server + loadgen + stats =="
# Service throughput floor: half the committed BENCH_3 service median
# for the same cell (shards=2, pipeline=8, mixed ratio, 4 conns x 10k
# ops). The wide 50% margin absorbs shared-runner noise while still
# catching an I/O-plane regression that halves throughput; trend-level
# tracking lives in the committed BENCH records, not in CI.
SVC_BASE=$(awk '/"shards":/ { s = ($2+0==2) }
  /"pipeline":/ { p = ($2+0==8) }
  /"mix":/ { m = ($2 ~ /"mixed"/) }
  s && p && m && /"ops_per_sec":/ { gsub(/,/,"",$2); print $2; exit }' \
  BENCH_3.json)
[ -n "$SVC_BASE" ] || { echo "could not extract the BENCH_3 service median"; exit 1; }
SVC_FLOOR=$(awk "BEGIN { print $SVC_BASE * 0.5 }")
echo "   (floor: service mixed throughput >= $SVC_FLOOR ops/s, 50% of $SVC_BASE)"
SOCK=/tmp/approx_ci_service.sock
rm -f "$SOCK"
dune exec bin/approx_cli.exe -- serve --shards 2 --io-domains 2 \
  --unix "$SOCK" --duration 60 &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
# Wait for the socket to appear.
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "service socket never appeared"; exit 1; }
dune exec bin/approx_cli.exe -- loadgen --unix "$SOCK" \
  --connections 2 --ops 2000 --pipeline 8 --mix 2:6:2 --add-delta 8
# The floor probe drives the same cell shape as the BENCH_3 record.
dune exec bin/approx_cli.exe -- loadgen --unix "$SOCK" \
  --connections 4 --ops 10000 --pipeline 8 \
  --min-throughput "$SVC_FLOOR"
dune exec bin/approx_cli.exe -- stats --unix "$SOCK" \
  > /tmp/approx_ci_stats.json
grep -q '"acc_violations_total": 0' /tmp/approx_ci_stats.json \
  || { echo "stats JSON missing clean accuracy self-check"; exit 1; }
grep -q '"latency_ns"' /tmp/approx_ci_stats.json \
  || { echo "stats JSON missing latency histograms"; exit 1; }
grep -q '"total_ops"' /tmp/approx_ci_stats.json \
  || { echo "stats JSON missing op counters"; exit 1; }
grep -q '"io_loops"' /tmp/approx_ci_stats.json \
  || { echo "stats JSON missing per-io-loop metrics"; exit 1; }
grep -q '"io_domains": 2' /tmp/approx_ci_stats.json \
  || { echo "stats JSON missing the io-domain count"; exit 1; }
grep -q '"cycle_ns"' /tmp/approx_ci_stats.json \
  || { echo "stats JSON missing cycle-duration histograms"; exit 1; }
kill $SERVE_PID
wait $SERVE_PID 2>/dev/null || true
trap - EXIT
rm -f /tmp/approx_ci_stats.json "$SOCK"

echo "CI checks passed."
