#!/bin/sh
# CI check: formatting, build, tests (which include the perf-pipeline
# smoke test), and a fresh smoke BENCH record. Run from the repo root.
set -e

echo "== dune build @fmt (dune files; ocamlformat is not installed) =="
dune build @fmt

echo "== dune build =="
dune build

echo "== dune runtest (includes bench smoke) =="
dune runtest

echo "== backend functor-instantiation smoke matrix =="
dune exec bin/approx_cli.exe -- backends

echo "== bench pipeline smoke (CLI path) =="
dune exec bin/approx_cli.exe -- bench --smoke --out /tmp/BENCH_ci_smoke.json \
  > /dev/null
rm -f /tmp/BENCH_ci_smoke.json

echo "== unknown subcommand exits 2 with usage on stderr =="
set +e
dune exec bin/approx_cli.exe -- frobnicate >/tmp/approx_ci_out.txt \
  2>/tmp/approx_ci_err.txt
code=$?
set -e
[ "$code" -eq 2 ] || { echo "expected exit 2, got $code"; exit 1; }
grep -q "usage: approx_cli COMMAND" /tmp/approx_ci_err.txt \
  || { echo "usage missing from stderr"; exit 1; }
rm -f /tmp/approx_ci_out.txt /tmp/approx_ci_err.txt

echo "== service smoke: 2-shard server + loadgen + stats JSON =="
SOCK=/tmp/approx_ci_service.sock
rm -f "$SOCK"
dune exec bin/approx_cli.exe -- serve --shards 2 --unix "$SOCK" \
  --duration 30 &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
# Wait for the socket to appear.
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "service socket never appeared"; exit 1; }
dune exec bin/approx_cli.exe -- loadgen --unix "$SOCK" \
  --connections 2 --ops 2000 --pipeline 8
dune exec bin/approx_cli.exe -- stats --unix "$SOCK" \
  > /tmp/approx_ci_stats.json
grep -q '"acc_violations_total": 0' /tmp/approx_ci_stats.json \
  || { echo "stats JSON missing clean accuracy self-check"; exit 1; }
grep -q '"latency_ns"' /tmp/approx_ci_stats.json \
  || { echo "stats JSON missing latency histograms"; exit 1; }
grep -q '"total_ops"' /tmp/approx_ci_stats.json \
  || { echo "stats JSON missing op counters"; exit 1; }
kill $SERVE_PID
wait $SERVE_PID 2>/dev/null || true
trap - EXIT
rm -f /tmp/approx_ci_stats.json "$SOCK"

echo "CI checks passed."
