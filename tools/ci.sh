#!/bin/sh
# CI check: formatting, build, tests (which include the perf-pipeline
# smoke test), and a fresh smoke BENCH record. Run from the repo root.
set -e

echo "== dune build @fmt (dune files; ocamlformat is not installed) =="
dune build @fmt

echo "== dune build =="
dune build

echo "== dune runtest (includes bench smoke) =="
dune runtest

echo "== backend functor-instantiation smoke matrix =="
dune exec bin/approx_cli.exe -- backends

echo "== bench pipeline smoke (CLI path) + perf regression guard =="
# Floor: the committed BENCH_2 kcounter read-heavy domains=1 median.
# The validated-cache read path must not regress below the last
# committed record even in the smoke configuration.
FLOOR=$(awk '/"object":/ { obj = ($2 ~ /kcounter/) }
  obj && /"workload":/ { rh = ($2 ~ /read-heavy/) }
  obj && rh && /"ops_per_sec_median":/ { gsub(/,/,"",$2); print $2; exit }' \
  BENCH_2.json)
[ -n "$FLOOR" ] || { echo "could not extract the BENCH_2 floor"; exit 1; }
echo "   (floor: kcounter read-heavy median >= $FLOOR ops/s)"
dune exec bin/approx_cli.exe -- bench --smoke --out /tmp/BENCH_ci_smoke.json \
  --check-floor "$FLOOR" > /dev/null
grep -q '"schema_version": 9' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record is not schema_version 9"; exit 1; }
grep -q '"fastpath"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the fastpath experiment"; exit 1; }
grep -q '"read_ablation"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the read ablation"; exit 1; }
grep -q '"inc_batching"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the inc batching sweep"; exit 1; }
grep -q '"mlp"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the mlp working-set sweep"; exit 1; }
grep -q '"flat_over_boxed_speedup"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the walk-vs-flat speedup"; exit 1; }
grep -q '"finals_agree": true' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke mlp layouts disagreed on final register values"; exit 1; }
grep -q '"service_io"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the I/O-plane sweep"; exit 1; }
grep -q '"io_domains": 2' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the io_domains=2 cell"; exit 1; }
grep -q '"effective_cores"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing host core detection"; exit 1; }
grep -q '"service_io_scale"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the poller scale sweep"; exit 1; }
grep -q '"poller": "select"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the select scale cell"; exit 1; }
grep -q '"poller_rejects"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing poller-reject counters"; exit 1; }
grep -q '"service_cluster"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the cluster sweep"; exit 1; }
grep -q '"chaos": true' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the node-kill chaos cell"; exit 1; }
grep -q '"converged": true' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke cluster cells did not converge"; exit 1; }
grep -q '"staleness_violations": 0' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke cluster cells violated the staleness envelope"; exit 1; }
grep -q '"service_durability"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the durability sweep"; exit 1; }
grep -q '"variant": "never-every-op"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the log-every-op ablation cell"; exit 1; }
grep -q '"wal_appends"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing WAL counters"; exit 1; }
grep -q '"zipf_s": 1.2' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the hot-key Zipf cell"; exit 1; }
grep -q '"service_cluster_comms"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the gossip data-path sweep"; exit 1; }
grep -q '"wire": "legacy"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the legacy-encoding A/B rows"; exit 1; }
grep -q '"legacy_over_compact_bytes_ratio"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the encoding byte ratio"; exit 1; }
grep -q '"healed": true' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record partition-heal cells did not heal"; exit 1; }
rm -f /tmp/BENCH_ci_smoke.json

echo "== committed BENCH_7 record: schema, cluster and durability fields =="
grep -q '"schema_version": 7' BENCH_7.json \
  || { echo "BENCH_7.json is not schema_version 7"; exit 1; }
grep -q '"service_io_scale"' BENCH_7.json \
  || { echo "BENCH_7.json missing the poller scale sweep"; exit 1; }
grep -q '"poller": "select"' BENCH_7.json \
  || { echo "BENCH_7.json missing the select scale cells"; exit 1; }
grep -q '"connections": 10000' BENCH_7.json \
  || { echo "BENCH_7.json missing the 10k-connection cell"; exit 1; }
grep -q '"service_cluster"' BENCH_7.json \
  || { echo "BENCH_7.json missing the cluster sweep"; exit 1; }
grep -q '"chaos": true' BENCH_7.json \
  || { echo "BENCH_7.json missing the node-kill chaos cell"; exit 1; }
grep -q '"service_durability"' BENCH_7.json \
  || { echo "BENCH_7.json missing the durability sweep"; exit 1; }
grep -q '"variant": "never-every-op"' BENCH_7.json \
  || { echo "BENCH_7.json missing the log-every-op ablation cell"; exit 1; }
grep -q '"recovered_within_envelope": true' BENCH_7.json \
  || { echo "BENCH_7.json kill -9 cell lost acked writes beyond the envelope"; exit 1; }
grep -q '"recovered_from_disk": true' BENCH_7.json \
  || { echo "BENCH_7.json kill -9 cell recovered nothing from disk"; exit 1; }

echo "== committed BENCH_8 record: schema and mlp-sweep fields =="
grep -q '"schema_version": 8' BENCH_8.json \
  || { echo "BENCH_8.json is not schema_version 8"; exit 1; }
grep -q '"mlp"' BENCH_8.json \
  || { echo "BENCH_8.json missing the mlp working-set sweep"; exit 1; }
grep -q '"cell": "llc-exceeding"' BENCH_8.json \
  || { echo "BENCH_8.json missing the LLC-exceeding mlp cell"; exit 1; }
grep -q '"boxed_heap_bytes"' BENCH_8.json \
  || { echo "BENCH_8.json missing the layout footprint fields"; exit 1; }
grep -q '"all_finals_agree": true' BENCH_8.json \
  || { echo "BENCH_8.json mlp layouts disagreed on final register values"; exit 1; }

echo "== committed BENCH_9 record: schema and gossip data-path fields =="
grep -q '"schema_version": 9' BENCH_9.json \
  || { echo "BENCH_9.json is not schema_version 9"; exit 1; }
grep -q '"service_cluster_comms"' BENCH_9.json \
  || { echo "BENCH_9.json missing the gossip data-path sweep"; exit 1; }
grep -q '"wire": "legacy"' BENCH_9.json \
  || { echo "BENCH_9.json missing the legacy-encoding A/B rows"; exit 1; }
grep -q '"gossip_bytes_suppressed"' BENCH_9.json \
  || { echo "BENCH_9.json missing the suppressed-bytes counters"; exit 1; }
grep -q '"all_cells_clean": true' BENCH_9.json \
  || { echo "BENCH_9.json comms cells had errors or did not converge"; exit 1; }
grep -q '"healed": true' BENCH_9.json \
  || { echo "BENCH_9.json partition-heal cells did not heal"; exit 1; }
# The headline claim: the compact wire path spends at least 4x fewer
# steady-state peer bytes per op than the legacy encoding.
RATIO=$(awk -F'[:,]' '/"min_legacy_over_compact_bytes_ratio"/ \
  { gsub(/ /,"",$2); print $2; exit }' BENCH_9.json)
[ -n "$RATIO" ] || { echo "BENCH_9.json missing the byte-ratio summary"; exit 1; }
RATIO_OK=$(awk "BEGIN { print ($RATIO >= 4.0) ? 1 : 0 }")
[ "$RATIO_OK" -eq 1 ] \
  || { echo "BENCH_9.json compact encoding ratio $RATIO below 4x"; exit 1; }

echo "== unknown subcommand exits 2 with usage on stderr =="
set +e
dune exec bin/approx_cli.exe -- frobnicate >/tmp/approx_ci_out.txt \
  2>/tmp/approx_ci_err.txt
code=$?
set -e
[ "$code" -eq 2 ] || { echo "expected exit 2, got $code"; exit 1; }
grep -q "usage: approx_cli COMMAND" /tmp/approx_ci_err.txt \
  || { echo "usage missing from stderr"; exit 1; }
rm -f /tmp/approx_ci_out.txt /tmp/approx_ci_err.txt

echo "== service smoke: 2-shard, 2-io-domain server + loadgen + stats =="
# Service throughput floor: half the committed BENCH_7 service median
# for the same cell (shards=2, pipeline=8, mixed ratio, 4 conns x 10k
# ops) — the last record from before the dense-id lookup landed, so a
# silent fall-back to the hashed path shows up against it. The wide
# 50% margin absorbs shared-runner noise while still catching an
# I/O-plane regression that halves throughput; trend-level tracking
# lives in the committed BENCH records, not in CI.
SVC_BASE=$(awk '/"shards":/ { s = ($2+0==2) }
  /"pipeline":/ { p = ($2+0==8) }
  /"mix":/ { m = ($2 ~ /"mixed",/) }
  s && p && m && /"ops_per_sec":/ { gsub(/,/,"",$2); print $2; exit }' \
  BENCH_7.json)
[ -n "$SVC_BASE" ] || { echo "could not extract the BENCH_7 service median"; exit 1; }
SVC_FLOOR=$(awk "BEGIN { print $SVC_BASE * 0.5 }")
echo "   (floor: service mixed throughput >= $SVC_FLOOR ops/s, 50% of $SVC_BASE)"
# Run the smoke once per poller backend. epoll is skipped (not failed)
# on platforms where the stubs are compiled out: an explicit
# `--poller epoll` request there must exit 2 with a clear message,
# which is itself asserted.
service_smoke() {
  POLLER=$1
  SOCK=/tmp/approx_ci_service_$POLLER.sock
  rm -f "$SOCK"
  dune exec bin/approx_cli.exe -- serve --shards 2 --io-domains 2 \
    --poller "$POLLER" --unix "$SOCK" --duration 60 &
  SERVE_PID=$!
  trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
  # Wait for the socket to appear.
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
  done
  [ -S "$SOCK" ] || { echo "service socket never appeared ($POLLER)"; exit 1; }
  dune exec bin/approx_cli.exe -- loadgen --unix "$SOCK" --poller "$POLLER" \
    --connections 2 --ops 2000 --pipeline 8 --mix 2:6:2 --add-delta 8
  # The floor probe drives the same cell shape as the BENCH_3 record.
  dune exec bin/approx_cli.exe -- loadgen --unix "$SOCK" \
    --connections 4 --ops 10000 --pipeline 8 \
    --min-throughput "$SVC_FLOOR"
  # The dense-id fast path must actually be exercised: the loadgen
  # JSON summary carries the server's interned-lookup counters, and
  # -1 means the server never reported them.
  dune exec bin/approx_cli.exe -- loadgen --unix "$SOCK" --poller "$POLLER" \
    --connections 2 --ops 2000 --pipeline 8 --json \
    > /tmp/approx_ci_lg.json
  grep -q '"intern_hits"' /tmp/approx_ci_lg.json \
    || { echo "loadgen JSON missing interned-lookup counters"; exit 1; }
  grep -q '"intern_hits": -1' /tmp/approx_ci_lg.json \
    && { echo "server STATS did not report interned-lookup counters"; exit 1; }
  rm -f /tmp/approx_ci_lg.json
  dune exec bin/approx_cli.exe -- stats --unix "$SOCK" \
    > /tmp/approx_ci_stats.json
  grep -q '"intern_hits"' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing interned-lookup counters"; exit 1; }
  grep -q '"acc_violations_total": 0' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing clean accuracy self-check"; exit 1; }
  grep -q '"latency_ns"' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing latency histograms"; exit 1; }
  grep -q '"total_ops"' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing op counters"; exit 1; }
  grep -q '"io_loops"' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing per-io-loop metrics"; exit 1; }
  grep -q '"io_domains": 2' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing the io-domain count"; exit 1; }
  grep -q '"cycle_ns"' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing cycle-duration histograms"; exit 1; }
  grep -q "\"poller\": \"$POLLER\"" /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing the active poller backend"; exit 1; }
  grep -q '"poller_rejects": 0' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing clean poller-reject counters"; exit 1; }
  kill $SERVE_PID
  wait $SERVE_PID 2>/dev/null || true
  trap - EXIT
  rm -f /tmp/approx_ci_stats.json "$SOCK"
}

service_smoke select

echo "== service smoke under the epoll backend (skipped if compiled out) =="
set +e
dune exec bin/approx_cli.exe -- serve --poller epoll --duration 0.1 \
  --unix /tmp/approx_ci_epoll_probe.sock >/dev/null 2>/tmp/approx_ci_epoll_err.txt
EPOLL_PROBE=$?
set -e
rm -f /tmp/approx_ci_epoll_probe.sock
if [ "$EPOLL_PROBE" -eq 0 ]; then
  service_smoke epoll
elif [ "$EPOLL_PROBE" -eq 2 ]; then
  grep -qi "epoll" /tmp/approx_ci_epoll_err.txt \
    || { echo "epoll refusal has no diagnostic"; exit 1; }
  echo "   (epoll backend not compiled in on this platform; skipped)"
else
  echo "serve --poller epoll exited $EPOLL_PROBE (want 0 or 2)"; exit 1
fi
rm -f /tmp/approx_ci_epoll_err.txt

echo "== durability smoke: WAL + fuzzy snapshots survive kill -9 =="
# End-to-end crash recovery through the real binary: serve with a data
# dir, push a write burst, SIGKILL (no shutdown path runs), restart on
# the same dir and assert the state came back from disk; a follow-up
# burst must then pass its own accuracy self-check on the recovered
# state. SLO flag is exercised with a generous budget so the new exit
# path stays covered.
EXE=_build/default/bin/approx_cli.exe
DURDIR=/tmp/approx_ci_dur_$$
DURSOCK=${DURDIR}.sock
rm -rf "$DURDIR" "$DURSOCK"
mkdir -p "$DURDIR"
start_dur_server() {
  "$EXE" serve --shards 2 --io-domains 1 --unix "$DURSOCK" --duration 120 \
    --data-dir "$DURDIR" --fsync never --snapshot-interval-ms 100 &
  DUR_PID=$!
}
start_dur_server
trap 'kill -9 $DUR_PID 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  [ -S "$DURSOCK" ] && break
  sleep 0.1
done
[ -S "$DURSOCK" ] || { echo "durability server socket never appeared"; exit 1; }
"$EXE" loadgen --unix "$DURSOCK" --connections 2 --ops 5000 --pipeline 8 \
  --mix 0:9:1 --add-delta 8 --slo-p99-us 1000000
kill -9 "$DUR_PID" 2>/dev/null || true
wait "$DUR_PID" 2>/dev/null || true
rm -f "$DURSOCK"
start_dur_server
for _ in $(seq 1 100); do
  [ -S "$DURSOCK" ] && break
  sleep 0.1
done
[ -S "$DURSOCK" ] || { echo "restarted durability server never came up"; exit 1; }
"$EXE" stats --unix "$DURSOCK" > /tmp/approx_ci_dur_stats.json
grep -q '"wal_appends"' /tmp/approx_ci_dur_stats.json \
  || { echo "stats JSON missing durability counters"; exit 1; }
if grep -q '"recovery_replayed_records": 0,' /tmp/approx_ci_dur_stats.json \
   && ! grep -q '"recovery_snapshot_loaded": true' /tmp/approx_ci_dur_stats.json; then
  echo "restart after kill -9 recovered nothing from disk"; exit 1
fi
# The recovered state must still satisfy the accuracy envelope under
# fresh load (exact shadows are rebuilt from the recovered baseline).
"$EXE" loadgen --unix "$DURSOCK" --connections 2 --ops 3000 --pipeline 8
"$EXE" stats --unix "$DURSOCK" > /tmp/approx_ci_dur_stats.json
grep -q '"acc_violations_total": 0' /tmp/approx_ci_dur_stats.json \
  || { echo "recovered server violated the accuracy self-check"; exit 1; }
kill "$DUR_PID" 2>/dev/null || true
wait "$DUR_PID" 2>/dev/null || true
trap - EXIT
rm -rf "$DURDIR" "$DURSOCK" /tmp/approx_ci_dur_stats.json

echo "== 3-node cluster smoke: delta gossip, hard node kill + blank restart =="
# Exercise the replication plane end to end: three server processes
# wired as gossip peers, the cluster-aware loadgen fanned out across
# all of them, one node SIGKILLed mid-run and restarted blank. The
# loadgen exits nonzero on any op error, so failover correctness is
# asserted by the exit code; the stats scrape then asserts that every
# surviving replica kept its widened accuracy self-check clean and
# that gossip actually flowed.
EXE=_build/default/bin/approx_cli.exe
CLBASE=/tmp/approx_ci_cluster_$$
rm -f "${CLBASE}"_*.sock
start_node() {
  N=$1
  PEERS=""
  for J in 0 1 2; do
    [ "$J" = "$N" ] && continue
    PEERS="${PEERS}${PEERS:+,}${J}=${CLBASE}_${J}.sock"
  done
  "$EXE" serve --shards 2 --io-domains 1 --counters 4 -k 4 \
    --node-id "$N" --nodes 3 --replicas 2 --gossip-interval-ms 10 \
    --staleness 2 --peers "$PEERS" --unix "${CLBASE}_${N}.sock" \
    --duration 120 &
  eval "NODE${N}_PID=\$!"
}
for N in 0 1 2; do start_node "$N"; done
trap 'kill $NODE0_PID $NODE1_PID $NODE2_PID 2>/dev/null || true' EXIT
for N in 0 1 2; do
  for _ in $(seq 1 100); do
    [ -S "${CLBASE}_${N}.sock" ] && break
    sleep 0.1
  done
  [ -S "${CLBASE}_${N}.sock" ] \
    || { echo "cluster node $N socket never appeared"; exit 1; }
done
CLNODES="${CLBASE}_0.sock,${CLBASE}_1.sock,${CLBASE}_2.sock"
"$EXE" loadgen --nodes "$CLNODES" --replicas 2 --connections 6 \
  --ops 60000 --pipeline 8 --mix 2:7:1 --max-reconnects 8 \
  > /tmp/approx_ci_cluster_lg.txt &
LG_PID=$!
sleep 0.6
kill -9 "$NODE1_PID" 2>/dev/null || true
wait "$NODE1_PID" 2>/dev/null || true
sleep 0.4
start_node 1
wait "$LG_PID" \
  || { echo "cluster loadgen reported op errors under chaos"; \
       cat /tmp/approx_ci_cluster_lg.txt; exit 1; }
grep -q " 0 errors" /tmp/approx_ci_cluster_lg.txt \
  || { echo "cluster loadgen summary reports errors"; \
       cat /tmp/approx_ci_cluster_lg.txt; exit 1; }
grep -q " 0 reconnects" /tmp/approx_ci_cluster_lg.txt \
  && { echo "node kill produced no loadgen reconnects"; \
       cat /tmp/approx_ci_cluster_lg.txt; exit 1; }
# Let gossip re-teach the restarted node, then scrape every replica.
sleep 0.5
GOSSIP_SENT=0
DIGEST_ROUNDS=0
PEER_BYTES=0
for N in 0 1 2; do
  "$EXE" stats --unix "${CLBASE}_${N}.sock" > /tmp/approx_ci_cluster_stats.json
  grep -q '"acc_violations_total": 0' /tmp/approx_ci_cluster_stats.json \
    || { echo "node $N violated the widened accuracy envelope"; exit 1; }
  grep -q '"nodes": 3' /tmp/approx_ci_cluster_stats.json \
    || { echo "node $N stats missing cluster topology"; exit 1; }
  if ! grep -q '"gossip_frames_sent": 0,' /tmp/approx_ci_cluster_stats.json; then
    GOSSIP_SENT=$((GOSSIP_SENT + 1))
  fi
  DR=$(awk -F'[:,]' '/"gossip_digest_rounds"/ { gsub(/ /,"",$2); print $2; exit }' \
    /tmp/approx_ci_cluster_stats.json)
  PB=$(awk -F'[:,]' '/"gossip_bytes_sent"/ { gsub(/ /,"",$2); print $2; exit }' \
    /tmp/approx_ci_cluster_stats.json)
  DIGEST_ROUNDS=$((DIGEST_ROUNDS + ${DR:-0}))
  PEER_BYTES=$((PEER_BYTES + ${PB:-0}))
done
[ "$GOSSIP_SENT" -ge 2 ] \
  || { echo "gossip never flowed ($GOSSIP_SENT nodes sent frames)"; exit 1; }
# Digest anti-entropy must have run (the restart heal depends on it),
# and steady-state peer traffic must stay compact: the run pushed
# 360k ops, so a generous 64 B/op ceiling still catches a fall-back
# to full-state blasts (which measure in the hundreds of B/op).
[ "$DIGEST_ROUNDS" -gt 0 ] \
  || { echo "digest anti-entropy never ran"; exit 1; }
BPO_OK=$(awk "BEGIN { print ($PEER_BYTES / 360000 <= 64) ? 1 : 0 }")
[ "$BPO_OK" -eq 1 ] \
  || { echo "peer traffic too heavy: $PEER_BYTES bytes over 360k ops"; exit 1; }
kill "$NODE0_PID" "$NODE1_PID" "$NODE2_PID" 2>/dev/null || true
wait "$NODE0_PID" "$NODE1_PID" "$NODE2_PID" 2>/dev/null || true
trap - EXIT
rm -f "${CLBASE}"_*.sock /tmp/approx_ci_cluster_lg.txt \
  /tmp/approx_ci_cluster_stats.json

echo "CI checks passed."
