#!/bin/sh
# CI check: formatting, build, tests (which include the perf-pipeline
# smoke test), and a fresh smoke BENCH record. Run from the repo root.
set -e

echo "== dune build @fmt (dune files; ocamlformat is not installed) =="
dune build @fmt

echo "== dune build =="
dune build

echo "== dune runtest (includes bench smoke) =="
dune runtest

echo "== backend functor-instantiation smoke matrix =="
dune exec bin/approx_cli.exe -- backends

echo "== bench pipeline smoke (CLI path) + perf regression guard =="
# Floor: the committed BENCH_2 kcounter read-heavy domains=1 median.
# The validated-cache read path must not regress below the last
# committed record even in the smoke configuration.
FLOOR=$(awk '/"object":/ { obj = ($2 ~ /kcounter/) }
  obj && /"workload":/ { rh = ($2 ~ /read-heavy/) }
  obj && rh && /"ops_per_sec_median":/ { gsub(/,/,"",$2); print $2; exit }' \
  BENCH_2.json)
[ -n "$FLOOR" ] || { echo "could not extract the BENCH_2 floor"; exit 1; }
echo "   (floor: kcounter read-heavy median >= $FLOOR ops/s)"
dune exec bin/approx_cli.exe -- bench --smoke --out /tmp/BENCH_ci_smoke.json \
  --check-floor "$FLOOR" > /dev/null
grep -q '"schema_version": 5' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record is not schema_version 5"; exit 1; }
grep -q '"fastpath"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the fastpath experiment"; exit 1; }
grep -q '"read_ablation"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the read ablation"; exit 1; }
grep -q '"inc_batching"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the inc batching sweep"; exit 1; }
grep -q '"service_io"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the I/O-plane sweep"; exit 1; }
grep -q '"io_domains": 2' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the io_domains=2 cell"; exit 1; }
grep -q '"effective_cores"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing host core detection"; exit 1; }
grep -q '"service_io_scale"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the poller scale sweep"; exit 1; }
grep -q '"poller": "select"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing the select scale cell"; exit 1; }
grep -q '"poller_rejects"' /tmp/BENCH_ci_smoke.json \
  || { echo "smoke record missing poller-reject counters"; exit 1; }
rm -f /tmp/BENCH_ci_smoke.json

echo "== committed BENCH_5 record: schema and poller fields =="
grep -q '"schema_version": 5' BENCH_5.json \
  || { echo "BENCH_5.json is not schema_version 5"; exit 1; }
grep -q '"service_io_scale"' BENCH_5.json \
  || { echo "BENCH_5.json missing the poller scale sweep"; exit 1; }
grep -q '"poller": "select"' BENCH_5.json \
  || { echo "BENCH_5.json missing the select scale cells"; exit 1; }
grep -q '"connections": 10000' BENCH_5.json \
  || { echo "BENCH_5.json missing the 10k-connection cell"; exit 1; }
grep -q '"max_ready_batch"' BENCH_5.json \
  || { echo "BENCH_5.json missing dispatch-batch observability"; exit 1; }

echo "== unknown subcommand exits 2 with usage on stderr =="
set +e
dune exec bin/approx_cli.exe -- frobnicate >/tmp/approx_ci_out.txt \
  2>/tmp/approx_ci_err.txt
code=$?
set -e
[ "$code" -eq 2 ] || { echo "expected exit 2, got $code"; exit 1; }
grep -q "usage: approx_cli COMMAND" /tmp/approx_ci_err.txt \
  || { echo "usage missing from stderr"; exit 1; }
rm -f /tmp/approx_ci_out.txt /tmp/approx_ci_err.txt

echo "== service smoke: 2-shard, 2-io-domain server + loadgen + stats =="
# Service throughput floor: half the committed BENCH_3 service median
# for the same cell (shards=2, pipeline=8, mixed ratio, 4 conns x 10k
# ops). The wide 50% margin absorbs shared-runner noise while still
# catching an I/O-plane regression that halves throughput; trend-level
# tracking lives in the committed BENCH records, not in CI.
SVC_BASE=$(awk '/"shards":/ { s = ($2+0==2) }
  /"pipeline":/ { p = ($2+0==8) }
  /"mix":/ { m = ($2 ~ /"mixed"/) }
  s && p && m && /"ops_per_sec":/ { gsub(/,/,"",$2); print $2; exit }' \
  BENCH_3.json)
[ -n "$SVC_BASE" ] || { echo "could not extract the BENCH_3 service median"; exit 1; }
SVC_FLOOR=$(awk "BEGIN { print $SVC_BASE * 0.5 }")
echo "   (floor: service mixed throughput >= $SVC_FLOOR ops/s, 50% of $SVC_BASE)"
# Run the smoke once per poller backend. epoll is skipped (not failed)
# on platforms where the stubs are compiled out: an explicit
# `--poller epoll` request there must exit 2 with a clear message,
# which is itself asserted.
service_smoke() {
  POLLER=$1
  SOCK=/tmp/approx_ci_service_$POLLER.sock
  rm -f "$SOCK"
  dune exec bin/approx_cli.exe -- serve --shards 2 --io-domains 2 \
    --poller "$POLLER" --unix "$SOCK" --duration 60 &
  SERVE_PID=$!
  trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
  # Wait for the socket to appear.
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
  done
  [ -S "$SOCK" ] || { echo "service socket never appeared ($POLLER)"; exit 1; }
  dune exec bin/approx_cli.exe -- loadgen --unix "$SOCK" --poller "$POLLER" \
    --connections 2 --ops 2000 --pipeline 8 --mix 2:6:2 --add-delta 8
  # The floor probe drives the same cell shape as the BENCH_3 record.
  dune exec bin/approx_cli.exe -- loadgen --unix "$SOCK" \
    --connections 4 --ops 10000 --pipeline 8 \
    --min-throughput "$SVC_FLOOR"
  dune exec bin/approx_cli.exe -- stats --unix "$SOCK" \
    > /tmp/approx_ci_stats.json
  grep -q '"acc_violations_total": 0' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing clean accuracy self-check"; exit 1; }
  grep -q '"latency_ns"' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing latency histograms"; exit 1; }
  grep -q '"total_ops"' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing op counters"; exit 1; }
  grep -q '"io_loops"' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing per-io-loop metrics"; exit 1; }
  grep -q '"io_domains": 2' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing the io-domain count"; exit 1; }
  grep -q '"cycle_ns"' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing cycle-duration histograms"; exit 1; }
  grep -q "\"poller\": \"$POLLER\"" /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing the active poller backend"; exit 1; }
  grep -q '"poller_rejects": 0' /tmp/approx_ci_stats.json \
    || { echo "stats JSON missing clean poller-reject counters"; exit 1; }
  kill $SERVE_PID
  wait $SERVE_PID 2>/dev/null || true
  trap - EXIT
  rm -f /tmp/approx_ci_stats.json "$SOCK"
}

service_smoke select

echo "== service smoke under the epoll backend (skipped if compiled out) =="
set +e
dune exec bin/approx_cli.exe -- serve --poller epoll --duration 0.1 \
  --unix /tmp/approx_ci_epoll_probe.sock >/dev/null 2>/tmp/approx_ci_epoll_err.txt
EPOLL_PROBE=$?
set -e
rm -f /tmp/approx_ci_epoll_probe.sock
if [ "$EPOLL_PROBE" -eq 0 ]; then
  service_smoke epoll
elif [ "$EPOLL_PROBE" -eq 2 ]; then
  grep -qi "epoll" /tmp/approx_ci_epoll_err.txt \
    || { echo "epoll refusal has no diagnostic"; exit 1; }
  echo "   (epoll backend not compiled in on this platform; skipped)"
else
  echo "serve --poller epoll exited $EPOLL_PROBE (want 0 or 2)"; exit 1
fi
rm -f /tmp/approx_ci_epoll_err.txt

echo "CI checks passed."
