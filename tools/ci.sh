#!/bin/sh
# CI check: formatting, build, tests (which include the perf-pipeline
# smoke test), and a fresh smoke BENCH record. Run from the repo root.
set -e

echo "== dune build @fmt (dune files; ocamlformat is not installed) =="
dune build @fmt

echo "== dune build =="
dune build

echo "== dune runtest (includes bench smoke) =="
dune runtest

echo "== backend functor-instantiation smoke matrix =="
dune exec bin/approx_cli.exe -- backends

echo "== bench pipeline smoke (CLI path) =="
dune exec bin/approx_cli.exe -- bench --smoke --out /tmp/BENCH_ci_smoke.json \
  > /dev/null
rm -f /tmp/BENCH_ci_smoke.json

echo "CI checks passed."
