(* Lincheck coverage for chaos-wrapped Algorithm 1: the counter functor
   instantiated over Chaos_backend.Make (Sim_backend), so every
   primitive may be preceded by a deterministic seeded burst of charged
   delay steps. Injection is a pure function of (seed, pid, #primitives
   issued by pid) — schedule-independent — so exhaustive exploration
   remains sound: each rebuild reproduces the same perturbed algorithm
   and only the schedule varies. *)

let check = Alcotest.check
let vi = Alcotest.int

module Chaos_sim = Backend.Chaos_backend.Make (Sim_backend)
module Chaos_atomic = Backend.Chaos_backend.Make (Backend.Atomic_backend)
module CK = Algo.Kcounter_algo.Make (Chaos_sim)
module SK = Algo.Kcounter_algo.Make (Sim_backend)
module CKA = Algo.Kcounter_algo.Make (Chaos_atomic)
module CMA = Algo.Kmaxreg_algo.Make (Chaos_atomic)

let build_chaos_counter ~seed ~rate ~n ~k script () =
  let exec = Sim.Exec.create ~n () in
  let ctx = Chaos_sim.ctx ~rate ~seed ~n (Sim_backend.ctx exec) in
  let counter = CK.create ctx ~n ~k () in
  let programs =
    Workload.Script.counter_programs (CK.handle counter) script
  in
  (exec, programs)

let test_chaos_kcounter_exhaustive_n2 () =
  (* n = 2, each process incs then reads, injected pauses at rate 1/2:
     every interleaving of the perturbed executions linearizes against
     the k-multiplicative counter spec. *)
  let stats =
    Lincheck.Explore.exhaustive
      ~build:
        (build_chaos_counter ~seed:1 ~rate:2 ~n:2 ~k:2
           [| [ Inc; Read ]; [ Inc; Read ] |])
      ~spec:(Lincheck.Spec.k_counter ~k:2) ()
  in
  check vi "violations" 0 stats.violations;
  Alcotest.(check bool) "not truncated" false stats.truncated;
  Alcotest.(check bool) "explored many executions" true (stats.executions > 10)

let test_chaos_kcounter_exhaustive_n2_seeds () =
  (* Different seeds perturb different primitives; the spec must hold
     for each. *)
  List.iter
    (fun seed ->
      let stats =
        Lincheck.Explore.exhaustive
          ~build:
            (build_chaos_counter ~seed ~rate:2 ~n:2 ~k:2
               [| [ Inc; Inc; Read ]; [ Read ] |])
          ~spec:(Lincheck.Spec.k_counter ~k:2) ()
      in
      check vi (Printf.sprintf "violations (seed=%d)" seed) 0 stats.violations)
    [ 2; 3; 4 ]

let test_chaos_kcounter_bounded_n3 () =
  (* n = 3 under injected delays: the state space is too large to
     exhaust, so explore a bounded prefix (truncation expected). *)
  let stats =
    Lincheck.Explore.exhaustive
      ~build:
        (build_chaos_counter ~seed:5 ~rate:2 ~n:3 ~k:2
           [| [ Inc; Read ]; [ Inc; Read ]; [ Inc; Read ] |])
      ~spec:(Lincheck.Spec.k_counter ~k:2) ~limit:300 ()
  in
  check vi "violations" 0 stats.violations;
  Alcotest.(check bool) "truncated" true stats.truncated;
  check vi "bounded exploration" 300 stats.executions

(* ------------------------------------------------------------------ *)
(* Sequential accuracy under injected yields                           *)
(* ------------------------------------------------------------------ *)

let test_chaos_sim_sequential_accuracy () =
  let n = 2 and k = 3 in
  (* The same program over the chaos-wrapped and the plain backend:
     accuracy must hold under injection, and the chaotic run must take
     strictly more charged steps (pauses are real steps). *)
  let run_one (type c t)
      (increment : t -> pid:int -> unit) (read : t -> pid:int -> int)
      (make : Sim.Exec.t -> c) (create : c -> t) =
    let exec = Sim.Exec.create ~n () in
    let counter = create (make exec) in
    let failures = ref [] in
    let programs =
      Array.init n (fun i _fiber ->
          if i = 0 then
            for v = 1 to 1_000 do
              increment counter ~pid:(v mod n);
              if v mod 50 = 0 then begin
                let x = read counter ~pid:0 in
                if not (Zmath.within_k ~k ~exact:v x) then
                  failures := (v, x) :: !failures
              end
            done)
    in
    ignore (Sim.Exec.run exec ~programs ~policy:Sim.Schedule.Round_robin ());
    (match !failures with
     | [] -> ()
     | (v, x) :: _ -> Alcotest.failf "read %d of count %d outside envelope" x v);
    Sim.Exec.steps_total exec
  in
  let chaotic =
    run_one CK.increment CK.read
      (fun exec -> Chaos_sim.ctx ~rate:1 ~seed:9 ~n (Sim_backend.ctx exec))
      (fun ctx -> CK.create ctx ~n ~k ())
  in
  let plain =
    run_one SK.increment SK.read
      (fun exec -> Sim_backend.ctx exec)
      (fun ctx -> SK.create ctx ~n ~k ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "pauses were injected (%d > %d steps)" chaotic plain)
    true (chaotic > plain)

let test_chaos_atomic_sequential_accuracy () =
  let k = 2 in
  let ctx = Chaos_atomic.ctx ~rate:2 ~seed:13 ~n:1 (Backend.Atomic_backend.ctx ()) in
  let counter = CKA.create ctx ~n:1 ~k () in
  for v = 1 to 3_000 do
    CKA.increment counter ~pid:0;
    let x = CKA.read counter ~pid:0 in
    if not (Zmath.within_k ~k ~exact:v x) then
      Alcotest.failf "read %d of count %d outside envelope" x v
  done

let test_chaos_atomic_kmaxreg_accuracy () =
  let k = 2 and m = 1 lsl 16 in
  let ctx = Chaos_atomic.ctx ~rate:2 ~seed:17 ~n:1 (Backend.Atomic_backend.ctx ()) in
  let mr = CMA.create ctx ~m ~k () in
  let best = ref 0 in
  List.iter
    (fun v ->
      CMA.write mr ~pid:0 v;
      best := max !best v;
      let x = CMA.read mr ~pid:0 in
      if not (x >= !best && x <= !best * k) then
        Alcotest.failf "read %d for max %d" x !best)
    [ 1; 9; 300; 7; 40_000; 12; 65_000 ]

let suite =
  [ ("chaos kcounter exhaustive n=2", `Quick, test_chaos_kcounter_exhaustive_n2);
    ("chaos kcounter exhaustive seeds", `Slow,
     test_chaos_kcounter_exhaustive_n2_seeds);
    ("chaos kcounter bounded n=3", `Quick, test_chaos_kcounter_bounded_n3);
    ("chaos sim sequential accuracy", `Quick, test_chaos_sim_sequential_accuracy);
    ("chaos atomic sequential accuracy", `Quick,
     test_chaos_atomic_sequential_accuracy);
    ("chaos atomic kmaxreg accuracy", `Quick, test_chaos_atomic_kmaxreg_accuracy) ]

let () = Alcotest.run "chaos" [ ("chaos", suite) ]
