(* Wire-protocol tests: encode/decode roundtrips as properties over
   arbitrary messages, incremental decoding (truncated frames must ask
   for more, never crash or misparse), and rejection of oversized and
   malformed frames. *)

module W = Service.Wire

let check = Alcotest.check

let encode_req req =
  let b = Buffer.create 64 in
  W.encode_request b req;
  Buffer.to_bytes b

let encode_resp resp =
  let b = Buffer.create 64 in
  W.encode_response b resp;
  Buffer.to_bytes b

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_id = QCheck.Gen.int_bound 0xFFFF_FFFF

let gen_name =
  QCheck.Gen.(
    int_range 1 W.max_name_len >>= fun n ->
    string_size ~gen:(char_range 'a' 'z') (return n))

let gen_delta =
  QCheck.Gen.(
    oneof
      [ (int_range 1 8 >>= fun w ->
         map
           (fun l -> Service.Delta.Counter (Array.of_list l))
           (list_size (return w) (int_bound 1_000_000)));
        map (fun v -> Service.Delta.Max v) (int_bound 1_000_000) ])

let gen_gossip_entries =
  QCheck.Gen.(
    list_size (int_range 0 16) (pair gen_name gen_delta) >>= fun entries ->
    (* Distinct names keep the comparison structural (duplicates are
       legal on the wire but make little sense in one frame). *)
    return
      (List.sort_uniq (fun (a, _) (b, _) -> compare a b) entries))

(* Compact peer-frame entries: counter pairs carry strictly increasing
   slots in 0..254 and non-negative absolute totals (the varint wire
   domain); oids are small dense ids; names are optional first
   mentions. *)
let gen_g2_body =
  QCheck.Gen.(
    oneof
      [ (list_size (int_range 1 8) (int_bound 254) >>= fun slots ->
         let slots = List.sort_uniq compare slots in
         map
           (fun vals -> W.G2_counter (List.combine slots vals))
           (list_size (return (List.length slots)) (int_bound 1_000_000)));
        map (fun v -> W.G2_max v) (int_bound 1_000_000) ])

let gen_g2_entries =
  QCheck.Gen.(
    map
      (List.map (fun ((oid, name), body) ->
           { W.g2_oid = oid; g2_name = name; g2_body = body }))
      (list_size (int_range 0 12)
         (pair (pair (int_bound 1000) (option gen_name)) gen_g2_body)))

let gen_digest_entries =
  QCheck.Gen.(
    map
      (List.map (fun ((oid, name), (fp, total)) ->
           { W.d_oid = oid; d_name = name; d_fp = fp; d_total = total }))
      (list_size (int_range 0 12)
         (pair
            (pair (int_bound 1000) (option gen_name))
            (pair (int_bound 0xFFFF_FFFF) (int_bound 1_000_000)))))

let gen_request =
  QCheck.Gen.(
    gen_id >>= fun id ->
    oneof
      [ map (fun name -> W.Inc { id; name }) gen_name;
        map (fun name -> W.Read { id; name }) gen_name;
        map2 (fun name value -> W.Write { id; name; value }) gen_name int;
        map2 (fun name delta -> W.Add { id; name; delta }) gen_name int;
        return (W.Stats { id });
        return (W.Ping { id });
        map2
          (fun version role -> W.Hello { id; version; role })
          (int_bound 255)
          (oneofl [ W.role_client; W.role_peer ]);
        map2
          (fun node entries -> W.Gossip { id; node; entries })
          (int_bound 255) gen_gossip_entries;
        map2
          (fun node entries -> W.Gossip2 { node; entries })
          (int_bound 255) gen_g2_entries;
        map2
          (fun node entries -> W.Digest { id; node; entries })
          (int_bound 255) gen_digest_entries ])

let gen_response =
  QCheck.Gen.(
    gen_id >>= fun id ->
    oneof
      [ map (fun value -> W.Value { id; value }) int;
        return (W.Busy { id });
        return (W.Unknown_object { id });
        return (W.Bad_request { id });
        map
          (fun json -> W.Stats_json { id; json })
          (string_size ~gen:printable (int_bound 200));
        return (W.Pong { id });
        map (fun version -> W.Hello_ok { id; version }) (int_bound 255);
        map (fun version -> W.Bad_version { id; version }) (int_bound 255);
        map
          (fun merged -> W.Gossip_ack { id; merged })
          (int_bound 0xFFFF) ])

let arb_request = QCheck.make gen_request
let arb_response = QCheck.make gen_response

(* ------------------------------------------------------------------ *)
(* Roundtrip properties                                                *)
(* ------------------------------------------------------------------ *)

(* Generated gossip frames may legally exceed the client cap, so the
   request properties decode under the peer cap (a superset); the
   client/peer cap split has its own dedicated tests below. *)
let prop_request_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"request roundtrip" arb_request
    (fun req ->
      let b = encode_req req in
      match W.decode_request_peer b ~off:0 ~len:(Bytes.length b) with
      | W.Decoded (req', consumed) ->
        req' = req && consumed = Bytes.length b
      | _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"response roundtrip" arb_response
    (fun resp ->
      let b = encode_resp resp in
      match W.decode_response b ~off:0 ~len:(Bytes.length b) with
      | W.Decoded (resp', consumed) ->
        resp' = resp && consumed = Bytes.length b
      | _ -> false)

let prop_request_truncation =
  QCheck.Test.make ~count:500
    ~name:"every strict prefix of a request frame asks for more"
    arb_request (fun req ->
      let b = encode_req req in
      let ok = ref true in
      for len = 0 to Bytes.length b - 1 do
        match W.decode_request_peer b ~off:0 ~len with
        | W.Need_more -> ()
        | _ -> ok := false
      done;
      !ok)

let prop_request_offset =
  QCheck.Test.make ~count:500 ~name:"decoding is offset-independent"
    (QCheck.pair arb_request arb_request) (fun (a, b') ->
      (* Two frames back to back: decoding at the second frame's offset
         yields the second message. *)
      let buf = Buffer.create 64 in
      W.encode_request buf a;
      let off = Buffer.length buf in
      W.encode_request buf b';
      let bytes = Buffer.to_bytes buf in
      match
        W.decode_request_peer bytes ~off ~len:(Bytes.length bytes - off)
      with
      | W.Decoded (m, consumed) ->
        m = b' && consumed = Bytes.length bytes - off
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Rejection                                                           *)
(* ------------------------------------------------------------------ *)

let frame_of_payload payload =
  let b = Buffer.create 64 in
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.to_bytes b

let expect_oversized name b =
  match W.decode_request b ~off:0 ~len:(Bytes.length b) with
  | W.Oversized _ -> ()
  | _ -> Alcotest.failf "%s: expected Oversized" name

let expect_malformed name b =
  match W.decode_request b ~off:0 ~len:(Bytes.length b) with
  | W.Malformed _ -> ()
  | _ -> Alcotest.failf "%s: expected Malformed" name

let test_oversized () =
  (* A header announcing an oversized payload is rejected before any
     payload bytes arrive: 4 header bytes suffice. *)
  let b = Buffer.create 4 in
  Buffer.add_int32_be b (Int32.of_int (W.max_request_payload + 1));
  expect_oversized "max+1, header only" (Buffer.to_bytes b);
  let b = Buffer.create 4 in
  Buffer.add_int32_be b 0x7FFFFFFFl;
  expect_oversized "huge" (Buffer.to_bytes b);
  let b = Buffer.create 4 in
  Buffer.add_int32_be b (-1l);
  expect_oversized "negative length" (Buffer.to_bytes b);
  let b = Buffer.create 4 in
  Buffer.add_int32_be b 0l;
  Buffer.add_string b "x";
  expect_oversized "zero-length payload" (Buffer.to_bytes b)

let test_malformed () =
  expect_malformed "bad op byte" (frame_of_payload "\x63AAAA");
  expect_malformed "stats with trailing junk" (frame_of_payload "\x04AAAAxx");
  (* INC whose name-length byte overruns the payload. *)
  expect_malformed "name overruns payload" (frame_of_payload "\x01AAAA\xffab");
  (* INC with trailing bytes after the name. *)
  expect_malformed "trailing bytes" (frame_of_payload "\x01AAAA\x01abXYZ");
  (* Response-only status byte is not a request op. *)
  expect_malformed "response opcode as request" (frame_of_payload "\x00AAAA")

let test_max_request_boundary () =
  (* The largest legal request frame (255-byte name WRITE) stays under
     the request cap; a payload of exactly max_request_payload is
     accepted by the framing layer (then rejected as unparseable). *)
  let name = String.make W.max_name_len 'n' in
  let b = encode_req (W.Write { id = 1; name; value = max_int }) in
  (match W.decode_request b ~off:0 ~len:(Bytes.length b) with
   | W.Decoded _ -> ()
   | _ -> Alcotest.fail "largest legal request rejected");
  let payload = String.make W.max_request_payload 'z' in
  match
    W.decode_request (frame_of_payload payload) ~off:0
      ~len:(W.header_len + W.max_request_payload)
  with
  | W.Malformed _ -> ()
  | W.Oversized _ -> Alcotest.fail "boundary payload flagged oversized"
  | _ -> Alcotest.fail "garbage payload decoded"

let test_name_too_long () =
  Alcotest.check_raises "encode rejects long names"
    (Invalid_argument "Wire.encode_request: object name longer than 255 bytes")
    (fun () ->
      ignore (encode_req (W.Inc { id = 0; name = String.make 256 'x' })))

(* ------------------------------------------------------------------ *)
(* Handshake and gossip frames                                         *)
(* ------------------------------------------------------------------ *)

let test_hello_roundtrip () =
  let hello =
    W.Hello { id = 7; version = W.protocol_version; role = W.role_peer }
  in
  let b = encode_req hello in
  (match W.decode_request b ~off:0 ~len:(Bytes.length b) with
   | W.Decoded (req, consumed) ->
     Alcotest.(check bool) "hello survives the client-cap decoder" true
       (req = hello && consumed = Bytes.length b)
   | _ -> Alcotest.fail "HELLO frame did not decode");
  let ok = encode_resp (W.Hello_ok { id = 7; version = W.protocol_version }) in
  (match W.decode_response ok ~off:0 ~len:(Bytes.length ok) with
   | W.Decoded (W.Hello_ok { id = 7; version }, _) ->
     check Alcotest.int "echoed version" W.protocol_version version
   | _ -> Alcotest.fail "HELLO_OK did not decode");
  let bad = encode_resp (W.Bad_version { id = 9; version = 99 }) in
  match W.decode_response bad ~off:0 ~len:(Bytes.length bad) with
  | W.Decoded (W.Bad_version { id = 9; version = 99 }, _) -> ()
  | _ -> Alcotest.fail "BAD_VERSION did not decode"

let test_hello_malformed () =
  (* HELLO is exactly 7 payload bytes: op, id, version, role. *)
  expect_malformed "hello truncated payload" (frame_of_payload "\x07AAAA\x02");
  expect_malformed "hello trailing bytes" (frame_of_payload "\x07AAAA\x02\x00Z")

let test_gossip_malformed () =
  (* Entry count promises one entry but the payload ends. *)
  expect_malformed "gossip missing entries"
    (frame_of_payload "\x08AAAA\x01\x00\x01");
  (* Entry with an unknown kind tag. *)
  expect_malformed "gossip bad kind tag"
    (frame_of_payload "\x08AAAA\x01\x00\x01\x01c\x07");
  (* Zero-length entry name. *)
  expect_malformed "gossip empty name"
    (frame_of_payload "\x08AAAA\x01\x00\x01\x00\x01AAAAAAAA")

(* The role split: one frame, two caps. A gossip frame bigger than the
   client cap must be rejected by the client decoder before its
   payload arrives, yet decode fine under the peer cap. *)
let test_peer_cap_split () =
  let wide =
    (* 16 entries x 255-byte names x 8 slots ~ 5.5 KB > 4096. *)
    List.init 16 (fun i ->
        (Printf.sprintf "%s%02d" (String.make 253 'g') i,
         Service.Delta.Counter (Array.make 8 max_int)))
  in
  let b = encode_req (W.Gossip { id = 3; node = 1; entries = wide }) in
  Alcotest.(check bool) "frame exceeds the client cap" true
    (Bytes.length b - W.header_len > W.max_request_payload);
  (match W.decode_request b ~off:0 ~len:(Bytes.length b) with
   | W.Oversized n ->
     check Alcotest.int "announced length" (Bytes.length b - W.header_len) n
   | _ -> Alcotest.fail "client decoder accepted a peer-sized frame");
  match W.decode_request_peer b ~off:0 ~len:(Bytes.length b) with
  | W.Decoded (W.Gossip { entries; _ }, consumed) ->
    check Alcotest.int "all entries back" 16 (List.length entries);
    check Alcotest.int "whole frame consumed" (Bytes.length b) consumed
  | _ -> Alcotest.fail "peer decoder rejected a legal gossip frame"

(* ------------------------------------------------------------------ *)
(* Compact peer frames: varints, the streaming builder, legacy parity  *)
(* ------------------------------------------------------------------ *)

(* Reference LEB128 reader (the decoder side lives inside Wire's frame
   parser; the tests keep their own so the encoding is pinned, not
   merely self-consistent). *)
let decode_varint bytes off =
  let v = ref 0 and shift = ref 0 and i = ref off in
  let continue = ref true in
  while !continue do
    let b = Char.code (Bytes.get bytes !i) in
    v := !v lor ((b land 0x7F) lsl !shift);
    shift := !shift + 7;
    incr i;
    if b < 0x80 then continue := false
  done;
  (!v, !i - off)

let test_varint_boundaries () =
  List.iter
    (fun v ->
      let ob = Service.Obuf.create () in
      Service.Obuf.add_varint ob v;
      check Alcotest.int
        (Printf.sprintf "varint_len agrees for %d" v)
        (Service.Obuf.varint_len v)
        (Service.Obuf.length ob);
      let v', n = decode_varint (Service.Obuf.bytes ob) 0 in
      check Alcotest.int (Printf.sprintf "roundtrip %d" v) v v';
      check Alcotest.int "consumed everything" (Service.Obuf.length ob) n)
    [ 0; 1; 127; 128; 129; 255; 16383; 16384; (1 lsl 21) - 1; 1 lsl 21;
      (1 lsl 28) - 1; 1 lsl 28; (1 lsl 35) - 1; 0x7FFF_FFFF; max_int ]

let prop_varint_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"varint roundtrip at declared length"
    (QCheck.make QCheck.Gen.(map (fun i -> i land max_int) int))
    (fun v ->
      let ob = Service.Obuf.create () in
      Service.Obuf.add_varint ob v;
      let v', n = decode_varint (Service.Obuf.bytes ob) 0 in
      v' = v && n = Service.Obuf.length ob && n = Service.Obuf.varint_len v)

(* The gossip sender's streaming builder must emit byte-identical
   frames to the typed encoder — the builder is the hot path, the
   typed encoder the specification (and what the decoder roundtrips
   against). Two frames back to back in one Obuf also pins the
   coalescing contract: finishing a frame leaves the buffer ready for
   the next. *)
let encode_via_builder ob (id, node, g2s, digs) =
  let bld = W.builder () in
  W.g2_start bld ob ~node;
  List.iter
    (fun e ->
      let name = Option.value ~default:"" e.W.g2_name in
      match e.W.g2_body with
      | W.G2_max v -> W.g2_add_max bld ~oid:e.W.g2_oid ~name v
      | W.G2_counter pairs ->
        let n = List.length pairs in
        let slots = Array.make n 0 and vals = Array.make n 0 in
        List.iteri
          (fun i (s, v) ->
            slots.(i) <- s;
            vals.(i) <- v)
          pairs;
        W.g2_add_counter bld ~oid:e.W.g2_oid ~name ~slots ~vals ~n)
    g2s;
  W.frame_finish bld;
  W.digest_start bld ob ~id ~node;
  List.iter
    (fun d ->
      let name = Option.value ~default:"" d.W.d_name in
      W.digest_add bld ~oid:d.W.d_oid ~name ~fp:d.W.d_fp ~total:d.W.d_total)
    digs;
  W.frame_finish bld

let prop_builder_parity =
  QCheck.Test.make ~count:500
    ~name:"streaming builder frames = typed encoder frames"
    (QCheck.make
       QCheck.Gen.(
         pair (pair gen_id (int_bound 255))
           (pair gen_g2_entries gen_digest_entries)))
    (fun ((id, node), (g2s, digs)) ->
      let ob = Service.Obuf.create () in
      encode_via_builder ob (id, node, g2s, digs);
      let buf = Buffer.create 256 in
      W.encode_request buf (W.Gossip2 { node; entries = g2s });
      W.encode_request buf (W.Digest { id; node; entries = digs });
      Service.Obuf.contents ob = Buffer.contents buf)

(* Old-vs-new encoder equivalence on exports: a replica vector pushed
   through the legacy fixed-width GOSSIP frame and through a compact
   GOSSIP2 frame (nonzero slots as gap-encoded pairs — the sender's
   zero-slot skipping) must decode back to the same state, and the
   compact frame must never be the larger of the two at realistic
   magnitudes. *)
let gen_exports =
  QCheck.Gen.(
    list_size (int_range 1 8)
      (pair gen_name
         (int_range 1 8 >>= fun w ->
          map Array.of_list (list_size (return w) (int_bound 1_000_000))))
    >>= fun l -> return (List.sort_uniq (fun (a, _) (b, _) -> compare a b) l))

let prop_legacy_compact_equivalence =
  QCheck.Test.make ~count:500
    ~name:"compact gap-encoded exports = legacy fixed-width exports"
    (QCheck.make gen_exports) (fun exports ->
      let node = 1 in
      let legacy_entries =
        List.map (fun (n, v) -> (n, Service.Delta.Counter v)) exports
      in
      let g2_entries =
        List.mapi
          (fun oid (n, v) ->
            let pairs = ref [] in
            Array.iteri
              (fun slot total ->
                if total > 0 then pairs := (slot, total) :: !pairs)
              v;
            (* An all-zero vector still pins its slot-0 total so the
               frame carries a legal non-empty entry. *)
            let pairs =
              if !pairs = [] then [ (0, 0) ] else List.rev !pairs
            in
            { W.g2_oid = oid; g2_name = Some n; g2_body = W.G2_counter pairs })
          exports
      in
      let legacy = encode_req (W.Gossip { id = 7; node; entries = legacy_entries }) in
      let compact = encode_req (W.Gossip2 { node; entries = g2_entries }) in
      let decoded_legacy =
        match W.decode_request_peer legacy ~off:0 ~len:(Bytes.length legacy) with
        | W.Decoded (W.Gossip { entries; _ }, _) -> entries
        | _ -> []
      in
      let decoded_compact =
        match
          W.decode_request_peer compact ~off:0 ~len:(Bytes.length compact)
        with
        | W.Decoded (W.Gossip2 { entries; _ }, _) ->
          List.map
            (fun e ->
              match (e.W.g2_name, e.W.g2_body) with
              | Some n, W.G2_counter pairs ->
                let _, orig = List.find (fun (n', _) -> n' = n) exports in
                let v = Array.make (Array.length orig) 0 in
                List.iter (fun (slot, total) -> v.(slot) <- total) pairs;
                (n, Service.Delta.Counter v)
              | _ -> ("", Service.Delta.Max (-1)))
            entries
        | _ -> []
      in
      decoded_legacy = legacy_entries
      && decoded_compact = legacy_entries
      && Bytes.length compact - W.header_len
         <= W.gossip_payload_len legacy_entries)

(* The coalesced sender's warm path — open frame, append interned
   entries, finish, repeat — must not allocate once the Obuf has grown
   to steady state: that is what lets a gossip round encode every
   dirty object and flush with one write, GC-silently.
   [Gc.minor_words] itself boxes a float, hence the small slack. *)
let test_builder_warm_no_alloc () =
  let ob = Service.Obuf.create () in
  let bld = W.builder () in
  let slots = [| 2 |] and vals = [| 0 |] in
  let round i =
    Service.Obuf.clear ob;
    W.g2_start bld ob ~node:1;
    vals.(0) <- i;
    W.g2_add_counter bld ~oid:3 ~name:"" ~slots ~vals ~n:1;
    W.g2_add_max bld ~oid:4 ~name:"" (2 * i);
    W.frame_finish bld;
    W.digest_start bld ob ~id:i ~node:1;
    W.digest_add bld ~oid:3 ~name:"" ~fp:(i land 0xFFFF_FFFF) ~total:i;
    W.frame_finish bld
  in
  for i = 1 to 64 do
    round i
  done;
  let before = Gc.minor_words () in
  for i = 0 to 9_999 do
    round i
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256.0 then
    Alcotest.failf "warm builder path allocated %.0f minor words over 10k rounds"
      delta

let test_gossip_encode_guards () =
  let entry v = [ ("c0", Service.Delta.Counter (Array.make v 0)) ] in
  Alcotest.check_raises "vector wider than 255 slots"
    (Invalid_argument
       "Wire.encode_request: gossip vector width outside 1..255")
    (fun () ->
      ignore (encode_req (W.Gossip { id = 0; node = 0; entries = entry 256 })));
  Alcotest.check_raises "node id out of byte range"
    (Invalid_argument "Wire.encode_request: gossip node id outside 0..255")
    (fun () ->
      ignore (encode_req (W.Gossip { id = 0; node = 256; entries = entry 1 })))

let () =
  Alcotest.run "service_wire"
    [ ("roundtrip",
       List.map QCheck_alcotest.to_alcotest
         [ prop_request_roundtrip;
           prop_response_roundtrip;
           prop_request_truncation;
           prop_request_offset ]);
      ("rejection",
       [ ("oversized frames", `Quick, test_oversized);
         ("malformed frames", `Quick, test_malformed);
         ("request-size boundary", `Quick, test_max_request_boundary);
         ("name length cap", `Quick, test_name_too_long) ]);
      ("handshake",
       [ ("hello/hello_ok/bad_version roundtrip", `Quick, test_hello_roundtrip);
         ("malformed hello", `Quick, test_hello_malformed) ]);
      ("gossip",
       [ ("malformed gossip", `Quick, test_gossip_malformed);
         ("client/peer cap split", `Quick, test_peer_cap_split);
         ("encode guards", `Quick, test_gossip_encode_guards) ]);
      ("compact peer frames",
       ("varint boundaries", `Quick, test_varint_boundaries)
       :: ("builder warm path allocation-free", `Quick,
           test_builder_warm_no_alloc)
       :: List.map QCheck_alcotest.to_alcotest
            [ prop_varint_roundtrip;
              prop_builder_parity;
              prop_legacy_compact_equivalence ]) ]
