(* Wire-protocol tests: encode/decode roundtrips as properties over
   arbitrary messages, incremental decoding (truncated frames must ask
   for more, never crash or misparse), and rejection of oversized and
   malformed frames. *)

module W = Service.Wire

let encode_req req =
  let b = Buffer.create 64 in
  W.encode_request b req;
  Buffer.to_bytes b

let encode_resp resp =
  let b = Buffer.create 64 in
  W.encode_response b resp;
  Buffer.to_bytes b

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_id = QCheck.Gen.int_bound 0xFFFF_FFFF

let gen_name =
  QCheck.Gen.(
    int_range 1 W.max_name_len >>= fun n ->
    string_size ~gen:(char_range 'a' 'z') (return n))

let gen_request =
  QCheck.Gen.(
    gen_id >>= fun id ->
    oneof
      [ map (fun name -> W.Inc { id; name }) gen_name;
        map (fun name -> W.Read { id; name }) gen_name;
        map2 (fun name value -> W.Write { id; name; value }) gen_name int;
        map2 (fun name delta -> W.Add { id; name; delta }) gen_name int;
        return (W.Stats { id });
        return (W.Ping { id }) ])

let gen_response =
  QCheck.Gen.(
    gen_id >>= fun id ->
    oneof
      [ map (fun value -> W.Value { id; value }) int;
        return (W.Busy { id });
        return (W.Unknown_object { id });
        return (W.Bad_request { id });
        map
          (fun json -> W.Stats_json { id; json })
          (string_size ~gen:printable (int_bound 200));
        return (W.Pong { id }) ])

let arb_request = QCheck.make gen_request
let arb_response = QCheck.make gen_response

(* ------------------------------------------------------------------ *)
(* Roundtrip properties                                                *)
(* ------------------------------------------------------------------ *)

let prop_request_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"request roundtrip" arb_request
    (fun req ->
      let b = encode_req req in
      match W.decode_request b ~off:0 ~len:(Bytes.length b) with
      | W.Decoded (req', consumed) ->
        req' = req && consumed = Bytes.length b
      | _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"response roundtrip" arb_response
    (fun resp ->
      let b = encode_resp resp in
      match W.decode_response b ~off:0 ~len:(Bytes.length b) with
      | W.Decoded (resp', consumed) ->
        resp' = resp && consumed = Bytes.length b
      | _ -> false)

let prop_request_truncation =
  QCheck.Test.make ~count:500
    ~name:"every strict prefix of a request frame asks for more"
    arb_request (fun req ->
      let b = encode_req req in
      let ok = ref true in
      for len = 0 to Bytes.length b - 1 do
        match W.decode_request b ~off:0 ~len with
        | W.Need_more -> ()
        | _ -> ok := false
      done;
      !ok)

let prop_request_offset =
  QCheck.Test.make ~count:500 ~name:"decoding is offset-independent"
    (QCheck.pair arb_request arb_request) (fun (a, b') ->
      (* Two frames back to back: decoding at the second frame's offset
         yields the second message. *)
      let buf = Buffer.create 64 in
      W.encode_request buf a;
      let off = Buffer.length buf in
      W.encode_request buf b';
      let bytes = Buffer.to_bytes buf in
      match W.decode_request bytes ~off ~len:(Bytes.length bytes - off) with
      | W.Decoded (m, consumed) ->
        m = b' && consumed = Bytes.length bytes - off
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Rejection                                                           *)
(* ------------------------------------------------------------------ *)

let frame_of_payload payload =
  let b = Buffer.create 64 in
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.to_bytes b

let expect_oversized name b =
  match W.decode_request b ~off:0 ~len:(Bytes.length b) with
  | W.Oversized _ -> ()
  | _ -> Alcotest.failf "%s: expected Oversized" name

let expect_malformed name b =
  match W.decode_request b ~off:0 ~len:(Bytes.length b) with
  | W.Malformed _ -> ()
  | _ -> Alcotest.failf "%s: expected Malformed" name

let test_oversized () =
  (* A header announcing an oversized payload is rejected before any
     payload bytes arrive: 4 header bytes suffice. *)
  let b = Buffer.create 4 in
  Buffer.add_int32_be b (Int32.of_int (W.max_request_payload + 1));
  expect_oversized "max+1, header only" (Buffer.to_bytes b);
  let b = Buffer.create 4 in
  Buffer.add_int32_be b 0x7FFFFFFFl;
  expect_oversized "huge" (Buffer.to_bytes b);
  let b = Buffer.create 4 in
  Buffer.add_int32_be b (-1l);
  expect_oversized "negative length" (Buffer.to_bytes b);
  let b = Buffer.create 4 in
  Buffer.add_int32_be b 0l;
  Buffer.add_string b "x";
  expect_oversized "zero-length payload" (Buffer.to_bytes b)

let test_malformed () =
  expect_malformed "bad op byte" (frame_of_payload "\x63AAAA");
  expect_malformed "stats with trailing junk" (frame_of_payload "\x04AAAAxx");
  (* INC whose name-length byte overruns the payload. *)
  expect_malformed "name overruns payload" (frame_of_payload "\x01AAAA\xffab");
  (* INC with trailing bytes after the name. *)
  expect_malformed "trailing bytes" (frame_of_payload "\x01AAAA\x01abXYZ");
  (* Response-only status byte is not a request op. *)
  expect_malformed "response opcode as request" (frame_of_payload "\x00AAAA")

let test_max_request_boundary () =
  (* The largest legal request frame (255-byte name WRITE) stays under
     the request cap; a payload of exactly max_request_payload is
     accepted by the framing layer (then rejected as unparseable). *)
  let name = String.make W.max_name_len 'n' in
  let b = encode_req (W.Write { id = 1; name; value = max_int }) in
  (match W.decode_request b ~off:0 ~len:(Bytes.length b) with
   | W.Decoded _ -> ()
   | _ -> Alcotest.fail "largest legal request rejected");
  let payload = String.make W.max_request_payload 'z' in
  match
    W.decode_request (frame_of_payload payload) ~off:0
      ~len:(W.header_len + W.max_request_payload)
  with
  | W.Malformed _ -> ()
  | W.Oversized _ -> Alcotest.fail "boundary payload flagged oversized"
  | _ -> Alcotest.fail "garbage payload decoded"

let test_name_too_long () =
  Alcotest.check_raises "encode rejects long names"
    (Invalid_argument "Wire.encode_request: object name longer than 255 bytes")
    (fun () ->
      ignore (encode_req (W.Inc { id = 0; name = String.make 256 'x' })))

let () =
  Alcotest.run "service_wire"
    [ ("roundtrip",
       List.map QCheck_alcotest.to_alcotest
         [ prop_request_roundtrip;
           prop_response_roundtrip;
           prop_request_truncation;
           prop_request_offset ]);
      ("rejection",
       [ ("oversized frames", `Quick, test_oversized);
         ("malformed frames", `Quick, test_malformed);
         ("request-size boundary", `Quick, test_max_request_boundary);
         ("name length cap", `Quick, test_name_too_long) ]) ]
