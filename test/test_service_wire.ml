(* Wire-protocol tests: encode/decode roundtrips as properties over
   arbitrary messages, incremental decoding (truncated frames must ask
   for more, never crash or misparse), and rejection of oversized and
   malformed frames. *)

module W = Service.Wire

let check = Alcotest.check

let encode_req req =
  let b = Buffer.create 64 in
  W.encode_request b req;
  Buffer.to_bytes b

let encode_resp resp =
  let b = Buffer.create 64 in
  W.encode_response b resp;
  Buffer.to_bytes b

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_id = QCheck.Gen.int_bound 0xFFFF_FFFF

let gen_name =
  QCheck.Gen.(
    int_range 1 W.max_name_len >>= fun n ->
    string_size ~gen:(char_range 'a' 'z') (return n))

let gen_delta =
  QCheck.Gen.(
    oneof
      [ (int_range 1 8 >>= fun w ->
         map
           (fun l -> Service.Delta.Counter (Array.of_list l))
           (list_size (return w) (int_bound 1_000_000)));
        map (fun v -> Service.Delta.Max v) (int_bound 1_000_000) ])

let gen_gossip_entries =
  QCheck.Gen.(
    list_size (int_range 0 16) (pair gen_name gen_delta) >>= fun entries ->
    (* Distinct names keep the comparison structural (duplicates are
       legal on the wire but make little sense in one frame). *)
    return
      (List.sort_uniq (fun (a, _) (b, _) -> compare a b) entries))

let gen_request =
  QCheck.Gen.(
    gen_id >>= fun id ->
    oneof
      [ map (fun name -> W.Inc { id; name }) gen_name;
        map (fun name -> W.Read { id; name }) gen_name;
        map2 (fun name value -> W.Write { id; name; value }) gen_name int;
        map2 (fun name delta -> W.Add { id; name; delta }) gen_name int;
        return (W.Stats { id });
        return (W.Ping { id });
        map2
          (fun version role -> W.Hello { id; version; role })
          (int_bound 255)
          (oneofl [ W.role_client; W.role_peer ]);
        map2
          (fun node entries -> W.Gossip { id; node; entries })
          (int_bound 255) gen_gossip_entries ])

let gen_response =
  QCheck.Gen.(
    gen_id >>= fun id ->
    oneof
      [ map (fun value -> W.Value { id; value }) int;
        return (W.Busy { id });
        return (W.Unknown_object { id });
        return (W.Bad_request { id });
        map
          (fun json -> W.Stats_json { id; json })
          (string_size ~gen:printable (int_bound 200));
        return (W.Pong { id });
        map (fun version -> W.Hello_ok { id; version }) (int_bound 255);
        map (fun version -> W.Bad_version { id; version }) (int_bound 255);
        map
          (fun merged -> W.Gossip_ack { id; merged })
          (int_bound 0xFFFF) ])

let arb_request = QCheck.make gen_request
let arb_response = QCheck.make gen_response

(* ------------------------------------------------------------------ *)
(* Roundtrip properties                                                *)
(* ------------------------------------------------------------------ *)

(* Generated gossip frames may legally exceed the client cap, so the
   request properties decode under the peer cap (a superset); the
   client/peer cap split has its own dedicated tests below. *)
let prop_request_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"request roundtrip" arb_request
    (fun req ->
      let b = encode_req req in
      match W.decode_request_peer b ~off:0 ~len:(Bytes.length b) with
      | W.Decoded (req', consumed) ->
        req' = req && consumed = Bytes.length b
      | _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"response roundtrip" arb_response
    (fun resp ->
      let b = encode_resp resp in
      match W.decode_response b ~off:0 ~len:(Bytes.length b) with
      | W.Decoded (resp', consumed) ->
        resp' = resp && consumed = Bytes.length b
      | _ -> false)

let prop_request_truncation =
  QCheck.Test.make ~count:500
    ~name:"every strict prefix of a request frame asks for more"
    arb_request (fun req ->
      let b = encode_req req in
      let ok = ref true in
      for len = 0 to Bytes.length b - 1 do
        match W.decode_request_peer b ~off:0 ~len with
        | W.Need_more -> ()
        | _ -> ok := false
      done;
      !ok)

let prop_request_offset =
  QCheck.Test.make ~count:500 ~name:"decoding is offset-independent"
    (QCheck.pair arb_request arb_request) (fun (a, b') ->
      (* Two frames back to back: decoding at the second frame's offset
         yields the second message. *)
      let buf = Buffer.create 64 in
      W.encode_request buf a;
      let off = Buffer.length buf in
      W.encode_request buf b';
      let bytes = Buffer.to_bytes buf in
      match
        W.decode_request_peer bytes ~off ~len:(Bytes.length bytes - off)
      with
      | W.Decoded (m, consumed) ->
        m = b' && consumed = Bytes.length bytes - off
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Rejection                                                           *)
(* ------------------------------------------------------------------ *)

let frame_of_payload payload =
  let b = Buffer.create 64 in
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.to_bytes b

let expect_oversized name b =
  match W.decode_request b ~off:0 ~len:(Bytes.length b) with
  | W.Oversized _ -> ()
  | _ -> Alcotest.failf "%s: expected Oversized" name

let expect_malformed name b =
  match W.decode_request b ~off:0 ~len:(Bytes.length b) with
  | W.Malformed _ -> ()
  | _ -> Alcotest.failf "%s: expected Malformed" name

let test_oversized () =
  (* A header announcing an oversized payload is rejected before any
     payload bytes arrive: 4 header bytes suffice. *)
  let b = Buffer.create 4 in
  Buffer.add_int32_be b (Int32.of_int (W.max_request_payload + 1));
  expect_oversized "max+1, header only" (Buffer.to_bytes b);
  let b = Buffer.create 4 in
  Buffer.add_int32_be b 0x7FFFFFFFl;
  expect_oversized "huge" (Buffer.to_bytes b);
  let b = Buffer.create 4 in
  Buffer.add_int32_be b (-1l);
  expect_oversized "negative length" (Buffer.to_bytes b);
  let b = Buffer.create 4 in
  Buffer.add_int32_be b 0l;
  Buffer.add_string b "x";
  expect_oversized "zero-length payload" (Buffer.to_bytes b)

let test_malformed () =
  expect_malformed "bad op byte" (frame_of_payload "\x63AAAA");
  expect_malformed "stats with trailing junk" (frame_of_payload "\x04AAAAxx");
  (* INC whose name-length byte overruns the payload. *)
  expect_malformed "name overruns payload" (frame_of_payload "\x01AAAA\xffab");
  (* INC with trailing bytes after the name. *)
  expect_malformed "trailing bytes" (frame_of_payload "\x01AAAA\x01abXYZ");
  (* Response-only status byte is not a request op. *)
  expect_malformed "response opcode as request" (frame_of_payload "\x00AAAA")

let test_max_request_boundary () =
  (* The largest legal request frame (255-byte name WRITE) stays under
     the request cap; a payload of exactly max_request_payload is
     accepted by the framing layer (then rejected as unparseable). *)
  let name = String.make W.max_name_len 'n' in
  let b = encode_req (W.Write { id = 1; name; value = max_int }) in
  (match W.decode_request b ~off:0 ~len:(Bytes.length b) with
   | W.Decoded _ -> ()
   | _ -> Alcotest.fail "largest legal request rejected");
  let payload = String.make W.max_request_payload 'z' in
  match
    W.decode_request (frame_of_payload payload) ~off:0
      ~len:(W.header_len + W.max_request_payload)
  with
  | W.Malformed _ -> ()
  | W.Oversized _ -> Alcotest.fail "boundary payload flagged oversized"
  | _ -> Alcotest.fail "garbage payload decoded"

let test_name_too_long () =
  Alcotest.check_raises "encode rejects long names"
    (Invalid_argument "Wire.encode_request: object name longer than 255 bytes")
    (fun () ->
      ignore (encode_req (W.Inc { id = 0; name = String.make 256 'x' })))

(* ------------------------------------------------------------------ *)
(* Handshake and gossip frames                                         *)
(* ------------------------------------------------------------------ *)

let test_hello_roundtrip () =
  let hello =
    W.Hello { id = 7; version = W.protocol_version; role = W.role_peer }
  in
  let b = encode_req hello in
  (match W.decode_request b ~off:0 ~len:(Bytes.length b) with
   | W.Decoded (req, consumed) ->
     Alcotest.(check bool) "hello survives the client-cap decoder" true
       (req = hello && consumed = Bytes.length b)
   | _ -> Alcotest.fail "HELLO frame did not decode");
  let ok = encode_resp (W.Hello_ok { id = 7; version = W.protocol_version }) in
  (match W.decode_response ok ~off:0 ~len:(Bytes.length ok) with
   | W.Decoded (W.Hello_ok { id = 7; version }, _) ->
     check Alcotest.int "echoed version" W.protocol_version version
   | _ -> Alcotest.fail "HELLO_OK did not decode");
  let bad = encode_resp (W.Bad_version { id = 9; version = 99 }) in
  match W.decode_response bad ~off:0 ~len:(Bytes.length bad) with
  | W.Decoded (W.Bad_version { id = 9; version = 99 }, _) -> ()
  | _ -> Alcotest.fail "BAD_VERSION did not decode"

let test_hello_malformed () =
  (* HELLO is exactly 7 payload bytes: op, id, version, role. *)
  expect_malformed "hello truncated payload" (frame_of_payload "\x07AAAA\x02");
  expect_malformed "hello trailing bytes" (frame_of_payload "\x07AAAA\x02\x00Z")

let test_gossip_malformed () =
  (* Entry count promises one entry but the payload ends. *)
  expect_malformed "gossip missing entries"
    (frame_of_payload "\x08AAAA\x01\x00\x01");
  (* Entry with an unknown kind tag. *)
  expect_malformed "gossip bad kind tag"
    (frame_of_payload "\x08AAAA\x01\x00\x01\x01c\x07");
  (* Zero-length entry name. *)
  expect_malformed "gossip empty name"
    (frame_of_payload "\x08AAAA\x01\x00\x01\x00\x01AAAAAAAA")

(* The role split: one frame, two caps. A gossip frame bigger than the
   client cap must be rejected by the client decoder before its
   payload arrives, yet decode fine under the peer cap. *)
let test_peer_cap_split () =
  let wide =
    (* 16 entries x 255-byte names x 8 slots ~ 5.5 KB > 4096. *)
    List.init 16 (fun i ->
        (Printf.sprintf "%s%02d" (String.make 253 'g') i,
         Service.Delta.Counter (Array.make 8 max_int)))
  in
  let b = encode_req (W.Gossip { id = 3; node = 1; entries = wide }) in
  Alcotest.(check bool) "frame exceeds the client cap" true
    (Bytes.length b - W.header_len > W.max_request_payload);
  (match W.decode_request b ~off:0 ~len:(Bytes.length b) with
   | W.Oversized n ->
     check Alcotest.int "announced length" (Bytes.length b - W.header_len) n
   | _ -> Alcotest.fail "client decoder accepted a peer-sized frame");
  match W.decode_request_peer b ~off:0 ~len:(Bytes.length b) with
  | W.Decoded (W.Gossip { entries; _ }, consumed) ->
    check Alcotest.int "all entries back" 16 (List.length entries);
    check Alcotest.int "whole frame consumed" (Bytes.length b) consumed
  | _ -> Alcotest.fail "peer decoder rejected a legal gossip frame"

let test_gossip_encode_guards () =
  let entry v = [ ("c0", Service.Delta.Counter (Array.make v 0)) ] in
  Alcotest.check_raises "vector wider than 255 slots"
    (Invalid_argument
       "Wire.encode_request: gossip vector width outside 1..255")
    (fun () ->
      ignore (encode_req (W.Gossip { id = 0; node = 0; entries = entry 256 })));
  Alcotest.check_raises "node id out of byte range"
    (Invalid_argument "Wire.encode_request: gossip node id outside 0..255")
    (fun () ->
      ignore (encode_req (W.Gossip { id = 0; node = 256; entries = entry 1 })))

let () =
  Alcotest.run "service_wire"
    [ ("roundtrip",
       List.map QCheck_alcotest.to_alcotest
         [ prop_request_roundtrip;
           prop_response_roundtrip;
           prop_request_truncation;
           prop_request_offset ]);
      ("rejection",
       [ ("oversized frames", `Quick, test_oversized);
         ("malformed frames", `Quick, test_malformed);
         ("request-size boundary", `Quick, test_max_request_boundary);
         ("name length cap", `Quick, test_name_too_long) ]);
      ("handshake",
       [ ("hello/hello_ok/bad_version roundtrip", `Quick, test_hello_roundtrip);
         ("malformed hello", `Quick, test_hello_malformed) ]);
      ("gossip",
       [ ("malformed gossip", `Quick, test_gossip_malformed);
         ("client/peer cap split", `Quick, test_peer_cap_split);
         ("encode guards", `Quick, test_gossip_encode_guards) ]) ]
