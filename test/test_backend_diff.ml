(* Cross-backend differential tests: the same workload script, pushed
   through the same functor body over Sim_backend and Atomic_backend,
   must produce identical observable read sequences.

   One deterministic global interleaving (Workload.Script.interleave)
   is replayed op-by-op: on the simulator inside a single fiber (the
   object is created for n processes; fiber 0 performs every operation
   with the operation's own ~pid), on hardware as a plain sequential
   loop (domains = 1). Both executions apply the same abstract
   operation sequence, so any divergence is a backend bug — a packed
   encoding slip, a switch-growth bug, a step-sequence divergence that
   changes helping. *)

let check = Alcotest.check

module SK = Algo.Kcounter_algo.Make (Sim_backend)
module AK = Algo.Kcounter_algo.Make (Backend.Atomic_backend)
module SM = Algo.Kmaxreg_algo.Make (Sim_backend)
module AM = Algo.Kmaxreg_algo.Make (Backend.Atomic_backend)
module SC = Algo.Collect_counter_algo.Make (Sim_backend)
module AC = Algo.Collect_counter_algo.Make (Backend.Atomic_backend)
module Chaos_atomic = Backend.Chaos_backend.Make (Backend.Atomic_backend)
module CK = Algo.Kcounter_algo.Make (Chaos_atomic)

(* Run [apply] over the interleaving inside fiber 0 of a fresh
   n-process simulator execution (processes 1 .. n-1 are idle; the
   ~pid each operation carries selects the object-level process). *)
let run_in_sim ~n ~build ~apply seq =
  let exec = Sim.Exec.create ~n () in
  let obj = build exec in
  let reads = ref [] in
  let programs =
    Array.init n (fun i _fiber ->
        if i = 0 then
          List.iter
            (fun (pid, op) ->
              match apply obj ~pid op with
              | None -> ()
              | Some v -> reads := v :: !reads)
            seq)
  in
  let outcome = Sim.Exec.run exec ~programs ~policy:Sim.Schedule.Round_robin () in
  Alcotest.(check bool) "sim run finished" true
    (Array.for_all Fun.id outcome.completed);
  List.rev !reads

let run_direct ~apply obj seq =
  let reads = ref [] in
  List.iter
    (fun (pid, op) ->
      match apply obj ~pid op with
      | None -> ()
      | Some v -> reads := v :: !reads)
    seq;
  List.rev !reads

(* ------------------------------------------------------------------ *)
(* k-multiplicative counter (Algorithm 1)                              *)
(* ------------------------------------------------------------------ *)

let apply_counter increment read obj ~pid op =
  match op with
  | Workload.Script.Inc ->
    increment obj ~pid;
    None
  | Workload.Script.Read -> Some (read obj ~pid)
  | Workload.Script.Write _ -> assert false

let test_kcounter_diff () =
  List.iter
    (fun (n, k, seed) ->
      let seq =
        Workload.Script.interleave ~seed
          (Workload.Script.counter_mix ~seed ~n ~ops_per_process:60
             ~read_fraction:0.3)
      in
      let sim_reads =
        run_in_sim ~n
          ~build:(fun exec -> SK.create (Sim_backend.ctx exec) ~n ~k ())
          ~apply:(apply_counter SK.increment SK.read)
          seq
      in
      let atomic =
        AK.create (Backend.Atomic_backend.ctx ()) ~capacity_hint:1 ~n ~k ()
      in
      let atomic_reads =
        run_direct ~apply:(apply_counter AK.increment AK.read) atomic seq
      in
      check
        Alcotest.(list int)
        (Printf.sprintf "kcounter reads agree (n=%d k=%d seed=%d)" n k seed)
        sim_reads atomic_reads)
    [ (1, 2, 1); (2, 2, 2); (3, 4, 3); (4, 3, 4) ]

let test_kcounter_diff_chaos () =
  (* Chaos injection only adds delay primitives; sequentially it must
     not change a single read. *)
  List.iter
    (fun seed ->
      let n = 3 and k = 2 in
      let seq =
        Workload.Script.interleave ~seed
          (Workload.Script.counter_mix ~seed ~n ~ops_per_process:50
             ~read_fraction:0.25)
      in
      let plain = AK.create (Backend.Atomic_backend.ctx ()) ~n ~k () in
      let plain_reads =
        run_direct ~apply:(apply_counter AK.increment AK.read) plain seq
      in
      let chaos_ctx =
        Chaos_atomic.ctx ~rate:2 ~seed ~n (Backend.Atomic_backend.ctx ())
      in
      let chaotic = CK.create chaos_ctx ~n ~k () in
      let chaos_reads =
        run_direct ~apply:(apply_counter CK.increment CK.read) chaotic seq
      in
      check
        Alcotest.(list int)
        (Printf.sprintf "chaos-wrapped reads agree (seed=%d)" seed)
        plain_reads chaos_reads)
    [ 5; 6 ]

(* ------------------------------------------------------------------ *)
(* k-multiplicative max register (Algorithm 2)                         *)
(* ------------------------------------------------------------------ *)

let apply_maxreg write read obj ~pid op =
  match op with
  | Workload.Script.Write v ->
    write obj ~pid v;
    None
  | Workload.Script.Read -> Some (read obj ~pid)
  | Workload.Script.Inc -> assert false

let test_kmaxreg_diff () =
  List.iter
    (fun (n, k, seed) ->
      let m = 1 lsl 20 in
      let script =
        Workload.Script.writes_then_read ~seed ~n ~writes_per_process:25
          ~max_value:m
      in
      let seq = Workload.Script.interleave ~seed script in
      let sim_reads =
        run_in_sim ~n
          ~build:(fun exec -> SM.create (Sim_backend.ctx exec) ~m ~k ())
          ~apply:(apply_maxreg SM.write SM.read)
          seq
      in
      let atomic = AM.create (Backend.Atomic_backend.ctx ()) ~m ~k () in
      let atomic_reads =
        run_direct ~apply:(apply_maxreg AM.write AM.read) atomic seq
      in
      check
        Alcotest.(list int)
        (Printf.sprintf "kmaxreg reads agree (n=%d k=%d seed=%d)" n k seed)
        sim_reads atomic_reads)
    [ (1, 2, 7); (2, 3, 8); (4, 2, 9) ]

(* ------------------------------------------------------------------ *)
(* Exact tree max register: flat read loop vs recursive walk           *)
(* ------------------------------------------------------------------ *)

(* The flattened index-arithmetic read (the shipped implementation)
   against the (index, span) recursion it replaced, replayed over the
   same interleavings. The reference maintains its own switch-heap
   mirror with the textbook recursive rules; sequentially the two
   heaps evolve identically, so any divergence is a flattening bug —
   an index slip, a wrong half split on a non-power-of-2 span, a hint
   that turned into a real (semantics-changing) access. *)
module Recursive_tree_ref = struct
  type t = { m : int; switch : int array }

  let create ~m =
    { m; switch = Array.make (2 * Zmath.pow 2 (Zmath.ceil_log2 (max m 1))) 0 }

  let rec write_node t i span v =
    if span > 1 then begin
      let half = (span + 1) / 2 in
      if v < half then begin
        if t.switch.(i) = 0 then write_node t (2 * i) half v
      end
      else begin
        write_node t ((2 * i) + 1) (span - half) (v - half);
        t.switch.(i) <- 1
      end
    end

  let write t v = write_node t 1 t.m v

  let rec read_node t i span acc =
    if span <= 1 then acc
    else
      let half = (span + 1) / 2 in
      if t.switch.(i) = 1 then
        read_node t ((2 * i) + 1) (span - half) (acc + half)
      else read_node t (2 * i) half acc

  let read t = read_node t 1 t.m 0
end

module TA = Algo.Tree_maxreg_algo.Make (Backend.Atomic_backend)
module TS = Algo.Tree_maxreg_algo.Make (Sim_backend)

let test_tree_flat_vs_recursive () =
  List.iter
    (fun (n, m, seed) ->
      let script =
        Workload.Script.writes_then_read ~seed ~n ~writes_per_process:30
          ~max_value:m
      in
      let seq = Workload.Script.interleave ~seed script in
      let flat = TA.create (Backend.Atomic_backend.ctx ()) ~m () in
      let reference = Recursive_tree_ref.create ~m in
      let running_max = ref 0 in
      List.iter
        (fun (pid, op) ->
          match op with
          | Workload.Script.Write v ->
            TA.write flat ~pid v;
            Recursive_tree_ref.write reference v;
            running_max := max !running_max v
          | Workload.Script.Read ->
            (* Compare after every read op AND keep a plain-max oracle
               so flat and reference cannot agree by being wrong the
               same way. *)
            let f = TA.read flat ~pid in
            check Alcotest.int
              (Printf.sprintf "flat = recursive (n=%d m=%d seed=%d)" n m seed)
              (Recursive_tree_ref.read reference)
              f;
            check Alcotest.int "flat = running max" !running_max f
          | Workload.Script.Inc -> assert false)
        seq;
      check Alcotest.int "final values agree"
        (Recursive_tree_ref.read reference)
        (TA.read flat ~pid:0))
    (* Non-power-of-2 bounds exercise the half = (span+1)/2 splits. *)
    [ (1, 1 lsl 16, 21); (2, 100_000, 22); (3, 777, 23); (4, 2, 24) ]

(* The same exact tree through Sim_backend: the flat loop issues the
   identical primitive sequence on a backend that charges steps, so a
   sequential replay must read identically to the hardware backend. *)
let test_tree_sim_vs_atomic () =
  List.iter
    (fun (n, m, seed) ->
      let script =
        Workload.Script.writes_then_read ~seed ~n ~writes_per_process:20
          ~max_value:m
      in
      let seq = Workload.Script.interleave ~seed script in
      let sim_reads =
        run_in_sim ~n
          ~build:(fun exec -> TS.create (Sim_backend.ctx exec) ~m ())
          ~apply:(apply_maxreg TS.write TS.read)
          seq
      in
      let atomic = TA.create (Backend.Atomic_backend.ctx ()) ~m () in
      let atomic_reads =
        run_direct ~apply:(apply_maxreg TA.write TA.read) atomic seq
      in
      check
        Alcotest.(list int)
        (Printf.sprintf "tree reads agree (n=%d m=%d seed=%d)" n m seed)
        sim_reads atomic_reads)
    [ (1, 1 lsl 12, 31); (3, 999, 32) ]

(* ------------------------------------------------------------------ *)
(* Collect counter baseline (exact)                                    *)
(* ------------------------------------------------------------------ *)

let test_collect_diff () =
  List.iter
    (fun (n, seed) ->
      let script =
        Workload.Script.counter_mix ~seed ~n ~ops_per_process:40
          ~read_fraction:0.5
      in
      let seq = Workload.Script.interleave ~seed script in
      let sim_reads =
        run_in_sim ~n
          ~build:(fun exec -> SC.create (Sim_backend.ctx exec) ~n ())
          ~apply:(apply_counter SC.increment SC.read)
          seq
      in
      let atomic = AC.create (Backend.Atomic_backend.ctx ()) ~n () in
      let atomic_reads =
        run_direct ~apply:(apply_counter AC.increment AC.read) atomic seq
      in
      check
        Alcotest.(list int)
        (Printf.sprintf "collect reads agree (n=%d seed=%d)" n seed)
        sim_reads atomic_reads;
      (* The collect counter is exact, so sequentially every read equals
         the number of increments applied before it — a cheap oracle that
         both backends are not merely wrong in the same way. *)
      let incs = ref 0 and oracle = ref [] in
      List.iter
        (fun (_, op) ->
          match op with
          | Workload.Script.Inc -> incr incs
          | Workload.Script.Read -> oracle := !incs :: !oracle
          | Workload.Script.Write _ -> ())
        seq;
      check
        Alcotest.(list int)
        (Printf.sprintf "collect reads exact (n=%d seed=%d)" n seed)
        (List.rev !oracle) atomic_reads)
    [ (1, 11); (3, 12); (5, 13) ]

(* ------------------------------------------------------------------ *)
(* Interleave itself                                                   *)
(* ------------------------------------------------------------------ *)

let test_interleave_properties () =
  let script =
    Workload.Script.counter_mix ~seed:42 ~n:4 ~ops_per_process:30
      ~read_fraction:0.5
  in
  let seq = Workload.Script.interleave ~seed:42 script in
  check Alcotest.int "length" (Workload.Script.total_ops script)
    (List.length seq);
  (* Per-process order is preserved. *)
  Array.iteri
    (fun pid ops ->
      let projected =
        List.filter_map (fun (p, op) -> if p = pid then Some op else None) seq
      in
      Alcotest.(check bool)
        (Printf.sprintf "pid %d program order" pid)
        true (projected = ops))
    script;
  (* Deterministic in the seed. *)
  Alcotest.(check bool) "same seed" true
    (Workload.Script.interleave ~seed:42 script = seq);
  Alcotest.(check bool) "different seed differs" true
    (Workload.Script.interleave ~seed:43 script <> seq)

let suite =
  [ ("kcounter sim vs atomic", `Quick, test_kcounter_diff);
    ("kcounter atomic vs chaos", `Quick, test_kcounter_diff_chaos);
    ("kmaxreg sim vs atomic", `Quick, test_kmaxreg_diff);
    ("tree flat vs recursive walk", `Quick, test_tree_flat_vs_recursive);
    ("tree sim vs atomic", `Quick, test_tree_sim_vs_atomic);
    ("collect sim vs atomic", `Quick, test_collect_diff);
    ("interleave properties", `Quick, test_interleave_properties) ]

let () = Alcotest.run "backend_diff" [ ("backend_diff", suite) ]
