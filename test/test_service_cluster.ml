(* The replication plane: consistent-hash placement properties,
   qcheck laws for the mergeable delta representation (the gossip
   layer may deliver late, duplicated, reordered — merges must be
   commutative, associative, idempotent, and replay must never widen
   a replica past the cluster state), object-table merge semantics,
   the HELLO handshake gate, and an in-process 3-node cluster driven
   end to end through the cluster-aware client and loadgen with a
   node killed and restarted mid-test. *)

module Srv = Service.Server
module Cl = Service.Client
module W = Service.Wire
module D = Service.Delta
module P = Service.Placement

let check = Alcotest.check

let sock_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "approx_cluster_test_%d_%d.sock" (Unix.getpid ()) !n)

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)
(* ------------------------------------------------------------------ *)

let gen_name =
  QCheck.Gen.(
    int_range 1 32 >>= fun n ->
    string_size ~gen:(char_range 'a' 'z') (return n))

let prop_placement_deterministic =
  QCheck.Test.make ~count:300
    ~name:"same (nodes, replicas) -> same owners on every participant"
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 8) (int_range 1 8) gen_name))
    (fun (nodes, replicas, name) ->
      let a = P.create ~nodes ~replicas in
      let b = P.create ~nodes ~replicas in
      P.owners a name = P.owners b name)

let prop_placement_owner_set =
  QCheck.Test.make ~count:300
    ~name:"owners: min(replicas, nodes) distinct in-range nodes"
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 8) (int_range 1 8) gen_name))
    (fun (nodes, replicas, name) ->
      let p = P.create ~nodes ~replicas in
      let owners = P.owners p name in
      List.length owners = min replicas nodes
      && List.length (List.sort_uniq compare owners) = List.length owners
      && List.for_all (fun i -> i >= 0 && i < nodes) owners)

let prop_placement_hosts_agree =
  QCheck.Test.make ~count:300
    ~name:"hosts node name <-> node in owners name"
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 8) (int_range 1 8) gen_name))
    (fun (nodes, replicas, name) ->
      let p = P.create ~nodes ~replicas in
      let owners = P.owners p name in
      List.for_all
        (fun node -> P.hosts p ~node name = List.mem node owners)
        (List.init nodes Fun.id))

let test_placement_single_node () =
  let p = P.create ~nodes:1 ~replicas:3 in
  check Alcotest.(list int) "one node owns everything" [ 0 ]
    (P.owners p "anything");
  check Alcotest.int "replicas clamped to nodes" 1 (P.replicas p)

(* ------------------------------------------------------------------ *)
(* Delta merge laws                                                    *)
(* ------------------------------------------------------------------ *)

let gen_counter_pair_same_width =
  QCheck.Gen.(
    int_range 1 8 >>= fun w ->
    let vec = list_size (return w) (int_bound 1_000_000) in
    pair
      (map (fun l -> D.Counter (Array.of_list l)) vec)
      (map (fun l -> D.Counter (Array.of_list l)) vec))

let gen_delta_pair =
  QCheck.Gen.(
    oneof
      [ gen_counter_pair_same_width;
        pair
          (map (fun v -> D.Max v) (int_bound 1_000_000))
          (map (fun v -> D.Max v) (int_bound 1_000_000)) ])

let gen_delta_triple =
  QCheck.Gen.(
    gen_delta_pair >>= fun (a, b) ->
    gen_delta_pair >>= fun (c, _) ->
    match (a, c) with
    | D.Counter v, _ ->
      let w = Array.length v in
      map
        (fun l -> (a, b, D.Counter (Array.of_list l)))
        (list_size (return w) (int_bound 1_000_000))
    | D.Max _, _ -> map (fun v -> (a, b, D.Max v)) (int_bound 1_000_000))

let prop_merge_commutative =
  QCheck.Test.make ~count:500 ~name:"merge a b = merge b a"
    (QCheck.make gen_delta_pair) (fun (a, b) ->
      D.equal (D.merge a b) (D.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~count:500 ~name:"merge (merge a b) c = merge a (merge b c)"
    (QCheck.make gen_delta_triple) (fun (a, b, c) ->
      D.equal (D.merge (D.merge a b) c) (D.merge a (D.merge b c)))

let prop_merge_idempotent =
  QCheck.Test.make ~count:500 ~name:"merge a a = a, merge (merge a b) b = merge a b"
    (QCheck.make gen_delta_pair) (fun (a, b) ->
      D.equal (D.merge a a) a && D.equal (D.merge (D.merge a b) b) (D.merge a b))

(* Replayed, duplicated, reordered gossip never widens a replica past
   the cluster state: per-node histories are monotone snapshot
   sequences; merging ANY multiset of snapshots (duplicates and all)
   stays at or below the sum of final own totals — so a local read,
   which serves within k_local of the merged total, stays within
   k_local * k_staleness of the cluster-exact value. Delivering every
   final snapshot closes the gap exactly. *)
let gen_histories =
  QCheck.Gen.(
    int_range 1 5 >>= fun nodes ->
    let history node =
      list_size (int_range 1 6) (int_range 0 1000) >>= fun increments ->
      (* Monotone per-node snapshots of that node's own slot. *)
      let snaps =
        List.rev
          (snd
             (List.fold_left
                (fun (total, acc) d ->
                  let t = total + d in
                  let v = Array.make nodes 0 in
                  v.(node) <- t;
                  (t, D.Counter v :: acc))
                (0, []) increments))
      in
      return snaps
    in
    flatten_l (List.init nodes history) >>= fun hists ->
    (* A delivery schedule: indices into each history, with
       duplicates, in arbitrary order. *)
    list_size (int_range 0 20)
      (pair (int_bound (nodes - 1)) (int_bound 99))
    >>= fun picks -> return (nodes, hists, picks))

let prop_replay_never_overshoots =
  QCheck.Test.make ~count:300
    ~name:"duplicated/reordered replay <= cluster exact; full delivery = exact"
    (QCheck.make gen_histories) (fun (nodes, hists, picks) ->
      let finals = List.map (fun h -> List.nth h (List.length h - 1)) hists in
      let exact = List.fold_left (fun acc d -> acc + D.value d) 0 finals in
      let zero = D.Counter (Array.make nodes 0) in
      let deliver acc (node, i) =
        let h = List.nth hists node in
        D.merge acc (List.nth h (i mod List.length h))
      in
      let partial = List.fold_left deliver zero picks in
      let complete = List.fold_left D.merge partial finals in
      D.value partial <= exact && D.value complete = exact)

(* ------------------------------------------------------------------ *)
(* Object-table merge semantics                                        *)
(* ------------------------------------------------------------------ *)

let build_node ~node_id ~nodes =
  let metrics = Service.Metrics.create ~node_id ~nodes ~shards:1 ~io_domains:1 () in
  Service.Objects.build ~nodes ~node_id ~metrics ~shards:1
    (Service.Objects.default_specs ~counters:1 ~k:4)

let test_objects_merge_roundtrip () =
  let t0 = build_node ~node_id:0 ~nodes:2 in
  let t1 = build_node ~node_id:1 ~nodes:2 in
  let o0 = Option.get (Service.Objects.find t0 "c0") in
  let o1 = Option.get (Service.Objects.find t1 "c0") in
  for _ = 1 to 25 do
    ignore (Service.Objects.defer o0 ~via_add:false 1)
  done;
  Service.Objects.apply_pending o0 ~pid:0;
  ignore (Service.Objects.defer o1 ~via_add:true 10);
  Service.Objects.apply_pending o1 ~pid:0;
  check Alcotest.int "node0 own contribution" 25 (Service.Objects.own_total o0);
  check Alcotest.int "node0 known before merge" 25 (Service.Objects.known o0);
  let d0 = Service.Objects.export_delta o0 in
  Alcotest.(check bool) "merge accepted by node1" true
    (Service.Objects.merge_delta o1 d0);
  check Alcotest.int "node1 knows both contributions" 35
    (Service.Objects.known o1);
  check Alcotest.int "node1 own contribution untouched" 10
    (Service.Objects.own_total o1);
  Alcotest.(check bool) "duplicated delivery accepted" true
    (Service.Objects.merge_delta o1 d0);
  check Alcotest.int "known unchanged by the replay" 35
    (Service.Objects.known o1);
  (* Merge back the other way: node0 learns node1's slot. *)
  Alcotest.(check bool) "reverse merge accepted by node0" true
    (Service.Objects.merge_delta o0 (Service.Objects.export_delta o1));
  check Alcotest.int "both replicas converge" 35 (Service.Objects.known o0);
  (* Kind mismatch is a recorded reject, not a merge. *)
  Alcotest.(check bool) "kind mismatch rejected" false
    (Service.Objects.merge_delta o1 (Service.Delta.Max 99));
  Alcotest.(check bool) "width mismatch rejected" false
    (Service.Objects.merge_delta o1 (Service.Delta.Counter [| 1; 2; 3 |]))

let test_objects_boundary_flag () =
  let t0 = build_node ~node_id:0 ~nodes:2 in
  let o = Option.get (Service.Objects.find t0 "c0") in
  Alcotest.(check bool) "empty object is inside the boundary" false
    (Service.Objects.boundary_crossed o ~k_staleness:2);
  ignore (Service.Objects.defer o ~via_add:true 5);
  Service.Objects.apply_pending o ~pid:0;
  Alcotest.(check bool) "never-exported growth crosses" true
    (Service.Objects.boundary_crossed o ~k_staleness:2);
  ignore (Service.Objects.take_dirty o);
  Service.Objects.mark_exported o;
  Alcotest.(check bool) "just-exported state is clean" false
    (Service.Objects.boundary_crossed o ~k_staleness:2);
  ignore (Service.Objects.defer o ~via_add:true 4);
  Service.Objects.apply_pending o ~pid:0;
  Alcotest.(check bool) "sub-threshold growth stays inside (9 < 2*5)" false
    (Service.Objects.boundary_crossed o ~k_staleness:2);
  ignore (Service.Objects.defer o ~via_add:true 1);
  Service.Objects.apply_pending o ~pid:0;
  Alcotest.(check bool) "k_staleness-fold growth crosses (10 >= 2*5)" true
    (Service.Objects.boundary_crossed o ~k_staleness:2)

(* A restarted node must not reconcile its pre-crash contribution
   (echoed back by a peer) against post-restart increments by
   subtraction: during the recovery window the own slot is withheld
   from exports, the echo folds into the base by plain max, and acked
   post-restart increments ride on top untouched. *)
let test_objects_restart_recovery () =
  (* Pre-crash epoch: node0 had contributed 25, and node1 holds the
     echo of that slot. *)
  let t1 = build_node ~node_id:1 ~nodes:2 in
  let o1 = Option.get (Service.Objects.find t1 "c0") in
  let pre_crash = D.Counter [| 25; 0 |] in
  Alcotest.(check bool) "peer learned the pre-crash slot" true
    (Service.Objects.merge_delta o1 pre_crash);
  (* node0 restarts blank, armed for recovery. *)
  let t0 = build_node ~node_id:0 ~nodes:2 in
  let o0 = Option.get (Service.Objects.find t0 "c0") in
  Service.Objects.begin_recovery o0;
  Alcotest.(check bool) "recovery window open" true
    (Service.Objects.recovering o0);
  (* Clients keep writing through the window: applied and acked... *)
  for _ = 1 to 7 do
    ignore (Service.Objects.defer o0 ~via_add:false 1)
  done;
  Service.Objects.apply_pending o0 ~pid:0;
  check Alcotest.int "post-restart increments applied locally" 7
    (Service.Objects.own_total o0);
  (* ...but withheld from exports, so any echo stays pre-crash pure. *)
  (match Service.Objects.export_delta o0 with
   | D.Counter v ->
     check Alcotest.int "own slot withheld while recovering" 0 v.(0)
   | D.Max _ -> Alcotest.fail "counter exported a max delta");
  Alcotest.(check bool) "no eager kick while recovering" false
    (Service.Objects.boundary_crossed o0 ~k_staleness:2);
  (* The first own-slot echo recovers the base and closes the window;
     the acked increments are preserved on top of it. *)
  Alcotest.(check bool) "echo merged" true
    (Service.Objects.merge_delta o0 (Service.Objects.export_delta o1));
  Alcotest.(check bool) "recovery window closed" false
    (Service.Objects.recovering o0);
  check Alcotest.int "base + post-restart increments" 32
    (Service.Objects.own_total o0);
  (match Service.Objects.export_delta o0 with
   | D.Counter v ->
     check Alcotest.int "own slot exported after recovery" 32 v.(0)
   | D.Max _ -> Alcotest.fail "counter exported a max delta");
  (* A stale replay of the echo after the flip must not regress. *)
  Alcotest.(check bool) "stale echo replay accepted" true
    (Service.Objects.merge_delta o0 pre_crash);
  check Alcotest.int "replay does not regress own_total" 32
    (Service.Objects.own_total o0);
  (* Standalone nodes and non-counters never arm. *)
  let ts = build_node ~node_id:0 ~nodes:1 in
  let os = Option.get (Service.Objects.find ts "c0") in
  Service.Objects.begin_recovery os;
  Alcotest.(check bool) "standalone node never recovers" false
    (Service.Objects.recovering os);
  let tm = build_node ~node_id:0 ~nodes:2 in
  let om = Option.get (Service.Objects.find tm "kmaxreg") in
  Service.Objects.begin_recovery om;
  Alcotest.(check bool) "max register never recovers" false
    (Service.Objects.recovering om)

(* Compact dirty pushes omit the receiver's own slot, which the server
   rebuilds as -1: "the sender said nothing about me". During a
   recovery window that absence must not masquerade as a zero-valued
   echo and close the window early — only a real (>= 0) own-slot value
   may. Regression for exactly that confusion. *)
let test_objects_recovery_ignores_absent_own_slot () =
  let t0 = build_node ~node_id:0 ~nodes:2 in
  let o0 = Option.get (Service.Objects.find t0 "c0") in
  Service.Objects.begin_recovery o0;
  ignore (Service.Objects.defer o0 ~via_add:true 7);
  Service.Objects.apply_pending o0 ~pid:0;
  (* A sparse push carrying only the peer's slot: merged, but the
     window stays open and the own slot stays withheld. *)
  Alcotest.(check bool) "sparse push merged" true
    (Service.Objects.merge_delta o0 (D.Counter [| -1; 11 |]));
  Alcotest.(check bool) "absent own slot leaves the window open" true
    (Service.Objects.recovering o0);
  check Alcotest.int "peer slot learned" 18 (Service.Objects.known o0);
  (match Service.Objects.export_delta o0 with
   | D.Counter v ->
     check Alcotest.int "own slot still withheld" 0 v.(0)
   | D.Max _ -> Alcotest.fail "counter exported a max delta");
  (* A full-vector repair (own slot >= 0, here the pre-crash 25)
     recovers the base and closes the window. *)
  Alcotest.(check bool) "repair merged" true
    (Service.Objects.merge_delta o0 (D.Counter [| 25; 11 |]));
  Alcotest.(check bool) "real echo closes the window" false
    (Service.Objects.recovering o0);
  check Alcotest.int "base + post-restart increments" 32
    (Service.Objects.own_total o0)

(* ------------------------------------------------------------------ *)
(* Digest anti-entropy                                                 *)
(* ------------------------------------------------------------------ *)

(* The object-level reconciliation loop the DIGEST/DIGEST_ACK exchange
   drives over the wire: compare (fingerprint, total) summaries,
   repair exactly the objects that disagree with full-vector exports,
   and agree after one symmetric exchange. The exported total rides
   in every digest as the fingerprint-collision backstop — divergence
   is flagged when {e either} field disagrees, so the test's
   reconcile predicate mirrors the server's. *)
let test_objects_digest_exchange () =
  let build id =
    let metrics =
      Service.Metrics.create ~node_id:id ~nodes:2 ~shards:1 ~io_domains:1 ()
    in
    Service.Objects.build ~nodes:2 ~node_id:id ~metrics ~shards:1
      (Service.Objects.default_specs ~counters:3 ~k:4)
  in
  let t0 = build 0 and t1 = build 1 in
  let obj t name = Option.get (Service.Objects.find t name) in
  let bump t name d =
    let o = obj t name in
    ignore (Service.Objects.defer o ~via_add:true d);
    Service.Objects.apply_pending o ~pid:0
  in
  (* Diverge two of the counters (one per side); c2 stays identical. *)
  bump t0 "c0" 5;
  bump t1 "c1" 9;
  let differs name =
    Service.Objects.digest (obj t0 name)
    <> Service.Objects.digest (obj t1 name)
  in
  Alcotest.(check bool) "c0 digests disagree" true (differs "c0");
  Alcotest.(check bool) "c1 digests disagree" true (differs "c1");
  Alcotest.(check bool) "untouched c2 digests agree" false (differs "c2");
  (* One symmetric exchange: each side repairs only flagged objects. *)
  let repair src dst =
    let repaired = ref [] in
    Service.Objects.iter
      (fun o_src ->
        let name = (Service.Objects.spec o_src).Service.Objects.name in
        let o_dst = obj dst name in
        let fp_s, tot_s = Service.Objects.digest o_src in
        let fp_d, tot_d = Service.Objects.digest o_dst in
        if fp_s <> fp_d || tot_s <> tot_d then begin
          repaired := name :: !repaired;
          Alcotest.(check bool)
            ("repair of " ^ name ^ " merged")
            true
            (Service.Objects.merge_delta o_dst
               (Service.Objects.export_delta o_src))
        end)
      src;
    List.rev !repaired
  in
  check
    Alcotest.(list string)
    "t0 -> t1 repairs only the diverged pair" [ "c0"; "c1" ] (repair t0 t1);
  (* The first pass already equalised c0 (t1 had nothing of its own
     there), so the return pass flags exactly the one remaining
     divergence. *)
  check
    Alcotest.(list string)
    "t1 -> t0 repairs only what still differs" [ "c1" ] (repair t1 t0);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " digests agree after one exchange") false
        (differs name);
      check Alcotest.int
        (name ^ " views converge")
        (Service.Objects.known (obj t0 name))
        (Service.Objects.known (obj t1 name)))
    [ "c0"; "c1"; "c2" ];
  check Alcotest.int "c0 merged view" 5 (Service.Objects.known (obj t1 "c0"));
  check Alcotest.int "c1 merged view" 9 (Service.Objects.known (obj t0 "c1"));
  (* And nothing is flagged on an immediate re-exchange. *)
  check Alcotest.(list string) "second exchange is empty" [] (repair t0 t1)

(* ------------------------------------------------------------------ *)
(* HELLO gate                                                          *)
(* ------------------------------------------------------------------ *)

let raw_connect srv =
  let fd =
    Unix.socket ~cloexec:true
      (Unix.domain_of_sockaddr (Srv.sockaddr srv))
      Unix.SOCK_STREAM 0
  in
  Unix.connect fd (Srv.sockaddr srv);
  fd

let raw_send fd req =
  let b = Buffer.create 64 in
  W.encode_request b req;
  let bytes = Buffer.to_bytes b in
  ignore (Unix.write fd bytes 0 (Bytes.length bytes))

(* Read until EOF; returns every decodable response frame. *)
let raw_drain fd =
  let buf = Bytes.create 65536 in
  let len = ref 0 in
  (try
     let rec go () =
       let n = Unix.read fd buf !len (Bytes.length buf - !len) in
       if n > 0 then begin
         len := !len + n;
         go ()
       end
     in
     go ()
   with Unix.Unix_error _ -> ());
  let rec decode off acc =
    match W.decode_response buf ~off ~len:(!len - off) with
    | W.Decoded (resp, consumed) -> decode (off + consumed) (resp :: acc)
    | _ -> List.rev acc
  in
  decode 0 []

let with_server ?config f =
  let srv = Srv.start ?config ~listen:(`Unix (sock_path ())) () in
  Fun.protect ~finally:(fun () -> Srv.stop srv) (fun () -> f srv)

let test_hello_gate_rejects_early_ops () =
  with_server (fun srv ->
      let fd = raw_connect srv in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* First frame is an op, not HELLO: no reply, clean close. *)
          raw_send fd (W.Inc { id = 1; name = "c0" });
          check Alcotest.int "no responses before the handshake" 0
            (List.length (raw_drain fd)));
      let m = Srv.metrics srv in
      Alcotest.(check bool) "rejection counted" true
        (Service.Metrics.hello_rejects m >= 1))

let test_hello_gate_bad_version () =
  with_server (fun srv ->
      let fd = raw_connect srv in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          raw_send fd
            (W.Hello { id = 5; version = 99; role = W.role_client });
          match raw_drain fd with
          | [ W.Bad_version { id = 5; version } ] ->
            check Alcotest.int "carries the server's version"
              W.protocol_version version
          | other ->
            Alcotest.failf "expected exactly one BAD_VERSION, got %d frames"
              (List.length other)))

let test_hello_gate_repeated_hello () =
  with_server (fun srv ->
      let fd = raw_connect srv in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          raw_send fd
            (W.Hello { id = 1; version = W.protocol_version; role = W.role_client });
          raw_send fd
            (W.Hello { id = 2; version = W.protocol_version; role = W.role_client });
          (* The second HELLO closes the connection as a protocol
             error; whether the first HELLO_OK was flushed before the
             close depends on read batching, so accept both shapes. *)
          match raw_drain fd with
          | [] | [ W.Hello_ok { id = 1; _ } ] -> ()
          | other ->
            Alcotest.failf "expected at most HELLO_OK then close, got %d frames"
              (List.length other));
      Alcotest.(check bool) "repeat counted as a protocol error" true
        (Service.Metrics.protocol_errors (Srv.metrics srv) >= 1))

let test_hello_gate_unknown_role () =
  with_server (fun srv ->
      let fd = raw_connect srv in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* [encode_request] refuses bad role bytes, so craft the
             frame by hand: length 7, op 7, id, version, role 9. *)
          let b = Buffer.create 16 in
          Buffer.add_int32_be b 7l;
          Buffer.add_uint8 b 7;
          Buffer.add_int32_be b 3l;
          Buffer.add_uint8 b W.protocol_version;
          Buffer.add_uint8 b 9;
          let bytes = Buffer.to_bytes b in
          ignore (Unix.write fd bytes 0 (Bytes.length bytes));
          match raw_drain fd with
          | [ W.Bad_request { id = 3 } ] -> ()
          | other ->
            Alcotest.failf "expected BAD_REQUEST for role 9, got %d frames"
              (List.length other));
      Alcotest.(check bool) "rejection counted" true
        (Service.Metrics.hello_rejects (Srv.metrics srv) >= 1))

let test_hello_gate_peer_role_standalone () =
  with_server (fun srv ->
      (* A standalone server has no peers, so nothing may claim the
         peer role (and its 1 MiB frame budget). *)
      let fd = raw_connect srv in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          raw_send fd
            (W.Hello { id = 4; version = W.protocol_version; role = W.role_peer });
          match raw_drain fd with
          | [ W.Bad_request { id = 4 } ] -> ()
          | other ->
            Alcotest.failf
              "expected BAD_REQUEST for peer role on a standalone server, \
               got %d frames"
              (List.length other));
      Alcotest.(check bool) "rejection counted" true
        (Service.Metrics.hello_rejects (Srv.metrics srv) >= 1))

let test_gossip_requires_peer_role () =
  with_server (fun srv ->
      (* A client-role connection must not be able to inject gossip. *)
      let cl = Cl.connect (Srv.sockaddr srv) in
      Fun.protect
        ~finally:(fun () -> Cl.close cl)
        (fun () ->
          match Cl.gossip cl ~node:0 [ ("c0", D.Counter [| 100 |]) ] with
          | exception (End_of_file | Failure _ | Unix.Unix_error _) -> ()
          | merged ->
            Alcotest.failf "client-role gossip accepted (%d merged)" merged))

(* ------------------------------------------------------------------ *)
(* In-process 3-node cluster, end to end                               *)
(* ------------------------------------------------------------------ *)

let cluster_config ~node_id ~nodes ~replicas ~paths =
  { Srv.default_config with
    shards = 2;
    specs = Service.Objects.default_specs ~counters:4 ~k:4;
    node_id;
    nodes;
    replicas;
    gossip_interval_ms = 10;
    k_staleness = 2;
    peers =
      List.filter_map
        (fun j -> if j = node_id then None else Some (j, `Unix (List.nth paths j)))
        (List.init nodes Fun.id) }

let with_cluster ~nodes ~replicas f =
  let paths = List.init nodes (fun _ -> sock_path ()) in
  let servers =
    Array.of_list
      (List.mapi
         (fun node_id path ->
           Some
             (Srv.start
                ~config:(cluster_config ~node_id ~nodes ~replicas ~paths)
                ~listen:(`Unix path) ()))
         paths)
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun s -> Option.iter Srv.stop s) servers)
    (fun () -> f ~paths ~servers)

let quiesce () = Unix.sleepf 0.15 (* >> 2 gossip intervals of 10 ms *)

let k_total = 4 * 2 (* k_local * k_staleness *)

let test_cluster_end_to_end () =
  with_cluster ~nodes:3 ~replicas:2 (fun ~paths ~servers:_ ->
      let cc =
        Cl.Cluster.connect ~replicas:2
          (List.map (fun p -> Unix.ADDR_UNIX p) paths)
      in
      Fun.protect
        ~finally:(fun () -> Cl.Cluster.close cc)
        (fun () ->
          let exact = Array.make 4 0 in
          for round = 1 to 10 do
            for c = 0 to 3 do
              let name = Printf.sprintf "c%d" c in
              for _ = 1 to round do
                (match Cl.Cluster.inc cc name with
                 | W.Value _ -> ()
                 | _ -> Alcotest.fail "INC rejected");
                exact.(c) <- exact.(c) + 1
              done;
              ignore (Cl.Cluster.add cc name 5);
              exact.(c) <- exact.(c) + 5
            done
          done;
          quiesce ();
          for c = 0 to 3 do
            let name = Printf.sprintf "c%d" c in
            let served = Cl.Cluster.read_value cc name in
            Alcotest.(check bool)
              (Printf.sprintf "%s: %d within k_total envelope of %d" name
                 served exact.(c))
              true
              (Zmath.within_k ~k:k_total ~exact:exact.(c) served)
          done;
          (* The exactly-served kinds survive placement + replication:
             writes land on a replica, reads reach one. *)
          ignore (Cl.Cluster.write cc "cas-maxreg" 777);
          check Alcotest.int "max register reads back" 777
            (Cl.Cluster.read_value cc "cas-maxreg")))

let test_cluster_node_kill_and_restart () =
  with_cluster ~nodes:3 ~replicas:2 (fun ~paths ~servers ->
      let cc =
        Cl.Cluster.connect ~replicas:2
          (List.map (fun p -> Unix.ADDR_UNIX p) paths)
      in
      Fun.protect
        ~finally:(fun () -> Cl.Cluster.close cc)
        (fun () ->
          let exact = ref 0 in
          let drive n =
            for _ = 1 to n do
              (match Cl.Cluster.inc cc "c0" with
               | W.Value _ -> ()
               | _ -> Alcotest.fail "INC rejected");
              incr exact
            done
          in
          drive 50;
          quiesce ();
          (* Kill c0's primary replica — every in-flight connection to
             it is cut, so subsequent c0 ops are forced to fail over
             to the surviving owner. The gossip had quiesced, so no
             contributions are lost with it. *)
          let victim = P.primary (Cl.Cluster.placement cc) "c0" in
          Option.iter Srv.stop servers.(victim);
          servers.(victim) <- None;
          drive 50;
          Alcotest.(check bool) "reads survive one replica down" true
            (Zmath.within_k ~k:k_total ~exact:!exact
               (Cl.Cluster.read_value cc "c0"));
          (* Restart it blank: gossip must re-teach it everything,
             including its own pre-crash contribution (slot recovery
             from the peers' echo of its G-counter slot). *)
          servers.(victim) <-
            Some
              (Srv.start
                 ~config:
                   (cluster_config ~node_id:victim ~nodes:3 ~replicas:2
                      ~paths)
                 ~listen:(`Unix (List.nth paths victim)) ());
          drive 25;
          quiesce ();
          quiesce ();
          Alcotest.(check bool) "reads converge after the restart" true
            (Zmath.within_k ~k:k_total ~exact:!exact
               (Cl.Cluster.read_value cc "c0"));
          (* Exact convergence, not just envelope membership: every
             owner's merged view of c0 must equal the client-side op
             count. This is the discriminating check for restart-base
             recovery — increments acked by the restarted node before
             its first own-slot echo would otherwise vanish from every
             replica, and the envelope check alone absorbs the loss. *)
          let owners_converged () =
            Array.for_all
              (fun s ->
                match s with
                | None -> true
                | Some srv -> (
                  match Service.Objects.find (Srv.table srv) "c0" with
                  | None -> true
                  | Some o -> Service.Objects.known o = !exact))
              servers
          in
          let rec await n =
            owners_converged ()
            ||
            (n > 0
             &&
             (quiesce ();
              await (n - 1)))
          in
          Alcotest.(check bool)
            (Printf.sprintf "every owner's merged view equals %d" !exact)
            true (await 10);
          Alcotest.(check bool) "failovers were exercised" true
            (Cl.Cluster.failovers cc > 0)))

let test_cluster_loadgen_failover () =
  with_cluster ~nodes:3 ~replicas:2 (fun ~paths ~servers ->
      (* One node is already dead when the load starts: its homed
         connections must reconnect across the ring, not error. *)
      Option.iter Srv.stop servers.(1);
      servers.(1) <- None;
      let r =
        Service.Loadgen.run
          ~addrs:(List.map (fun p -> Unix.ADDR_UNIX p) paths)
          { Service.Loadgen.default_config with
            connections = 6;
            ops_per_connection = 1_000;
            pipeline = 4;
            read_permille = 200;
            add_permille = 100;
            replicas = 2;
            max_reconnects = 4 }
      in
      check Alcotest.int "every op completed" 6_000
        (r.Service.Loadgen.ok + r.Service.Loadgen.busy);
      check Alcotest.int "no errors" 0 r.Service.Loadgen.errors;
      Alcotest.(check bool) "dead node absorbed by reconnects" true
        (r.Service.Loadgen.reconnects > 0))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service_cluster"
    [ ("placement",
       ("single node owns everything", `Quick, test_placement_single_node)
       :: List.map QCheck_alcotest.to_alcotest
            [ prop_placement_deterministic;
              prop_placement_owner_set;
              prop_placement_hosts_agree ]);
      ("delta laws",
       List.map QCheck_alcotest.to_alcotest
         [ prop_merge_commutative;
           prop_merge_associative;
           prop_merge_idempotent;
           prop_replay_never_overshoots ]);
      ("object merge",
       [ ("export/merge roundtrip", `Quick, test_objects_merge_roundtrip);
         ("staleness boundary flag", `Quick, test_objects_boundary_flag);
         ("restart-base recovery", `Quick, test_objects_restart_recovery);
         ("absent own slot keeps recovery open", `Quick,
          test_objects_recovery_ignores_absent_own_slot);
         ("digest exchange reconciles divergence", `Quick,
          test_objects_digest_exchange) ]);
      ("handshake gate",
       [ ("ops before HELLO are rejected", `Quick,
          test_hello_gate_rejects_early_ops);
         ("version mismatch", `Quick, test_hello_gate_bad_version);
         ("repeated HELLO closes the connection", `Quick,
          test_hello_gate_repeated_hello);
         ("unknown role byte is rejected", `Quick,
          test_hello_gate_unknown_role);
         ("peer role needs a cluster", `Quick,
          test_hello_gate_peer_role_standalone);
         ("gossip needs the peer role", `Quick,
          test_gossip_requires_peer_role) ]);
      ("cluster",
       [ ("3 nodes, 2 replicas, end to end", `Quick, test_cluster_end_to_end);
         ("node kill and blank restart", `Quick,
          test_cluster_node_kill_and_restart);
         ("loadgen fails over a dead node", `Quick,
          test_cluster_loadgen_failover) ]) ]
