(* Tests for the real-multicore (Atomic/Domain) implementations. The
   container may have a single core; these tests validate safety and
   accuracy, not speedups. *)

let check = Alcotest.check
let vi = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Mc_kcounter                                                         *)
(* ------------------------------------------------------------------ *)

let test_kcounter_sequential_accuracy () =
  let k = 3 in
  let counter = Mcore.Mc_kcounter.create ~n:1 ~k () in
  for v = 1 to 5_000 do
    Mcore.Mc_kcounter.increment counter ~pid:0;
    let x = Mcore.Mc_kcounter.read counter ~pid:0 in
    if not (Zmath.within_k ~k ~exact:v x) then
      Alcotest.failf "read %d of count %d outside envelope" x v
  done

let test_kcounter_parallel_quiescent () =
  let domains = 4 in
  let per_domain = 20_000 in
  let k = 2 in
  (* k < sqrt(4) = 2 is allowed boundary: k = 2 >= sqrt(4). *)
  let counter = Mcore.Mc_kcounter.create ~n:domains ~k () in
  let result =
    Mcore.Throughput.run ~domains ~ops_per_domain:per_domain
      ~worker:(fun ~pid ~op_index:_ ->
        Mcore.Mc_kcounter.increment counter ~pid)
  in
  check vi "all ops ran" (domains * per_domain) result.total_ops;
  (* Quiescent read: actual total v = domains * per_domain, but up to
     (limit - 1) increments per process may remain unannounced; the
     k-multiplicative envelope must still hold. *)
  let x = Mcore.Mc_kcounter.read counter ~pid:0 in
  let v = domains * per_domain in
  Alcotest.(check bool)
    (Printf.sprintf "quiescent read %d within [v/k, v*k] of %d" x v)
    true
    (Zmath.within_k ~k ~exact:v x)

let test_kcounter_parallel_mixed_envelope () =
  let domains = 3 in
  let per_domain = 10_000 in
  let k = 2 in
  let counter = Mcore.Mc_kcounter.create ~n:domains ~k () in
  let violations = Atomic.make 0 in
  let done_incs = Array.init domains (fun _ -> Atomic.make 0) in
  ignore
    (Mcore.Throughput.run ~domains ~ops_per_domain:per_domain
       ~worker:(fun ~pid ~op_index ->
         if op_index mod 100 = 99 then begin
           (* Reads interleaved with increments: check the coarse envelope
              [completed/k, k*(all possibly started)]. *)
           let low_bound =
             Array.fold_left (fun acc c -> acc + Atomic.get c) 0 done_incs
           in
           let x = Mcore.Mc_kcounter.read counter ~pid in
           let high_possible = domains * per_domain in
           if x * k < low_bound || x > k * high_possible then
             Atomic.incr violations;
           ignore low_bound
         end
         else begin
           Mcore.Mc_kcounter.increment counter ~pid;
           Atomic.incr done_incs.(pid)
         end));
  check vi "no envelope violations" 0 (Atomic.get violations)

(* ------------------------------------------------------------------ *)
(* Mc_kmaxreg                                                          *)
(* ------------------------------------------------------------------ *)

let test_kmaxreg_sequential () =
  let k = 2 and m = 1 lsl 20 in
  let mr = Mcore.Mc_kmaxreg.create ~m ~k () in
  check vi "initial" 0 (Mcore.Mc_kmaxreg.read mr);
  let best = ref 0 in
  List.iter
    (fun v ->
      Mcore.Mc_kmaxreg.write mr v;
      best := max !best v;
      let x = Mcore.Mc_kmaxreg.read mr in
      if not (x >= !best && x <= !best * k) then
        Alcotest.failf "read %d for max %d" x !best)
    [ 1; 100; 7; 65_535; 3; 1_000_000 ]

let test_kmaxreg_parallel_watermark () =
  let domains = 4 in
  let per_domain = 25_000 in
  let k = 2 and m = 1 lsl 30 in
  let mr = Mcore.Mc_kmaxreg.create ~m ~k () in
  ignore
    (Mcore.Throughput.run ~domains ~ops_per_domain:per_domain
       ~worker:(fun ~pid ~op_index ->
         Mcore.Mc_kmaxreg.write mr ((op_index * domains) + pid + 1)));
  let v = ((per_domain - 1) * domains) + domains in
  let x = Mcore.Mc_kmaxreg.read mr in
  Alcotest.(check bool)
    (Printf.sprintf "quiescent read %d within envelope of %d" x v)
    true
    (x >= v && x <= v * k)

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)
(* ------------------------------------------------------------------ *)

let test_faa_parallel_exact () =
  let domains = 4 and per_domain = 50_000 in
  let counter = Mcore.Mc_baselines.Faa_counter.create () in
  ignore
    (Mcore.Throughput.run ~domains ~ops_per_domain:per_domain
       ~worker:(fun ~pid:_ ~op_index:_ ->
         Mcore.Mc_baselines.Faa_counter.increment counter));
  check vi "exact" (domains * per_domain)
    (Mcore.Mc_baselines.Faa_counter.read counter)

let test_collect_parallel_exact () =
  let domains = 4 and per_domain = 50_000 in
  let counter = Mcore.Mc_baselines.Collect_counter.create ~n:domains in
  ignore
    (Mcore.Throughput.run ~domains ~ops_per_domain:per_domain
       ~worker:(fun ~pid ~op_index:_ ->
         Mcore.Mc_baselines.Collect_counter.increment counter ~pid));
  check vi "exact" (domains * per_domain)
    (Mcore.Mc_baselines.Collect_counter.read counter)

let test_lock_parallel_exact () =
  let domains = 4 and per_domain = 20_000 in
  let counter = Mcore.Mc_baselines.Lock_counter.create () in
  ignore
    (Mcore.Throughput.run ~domains ~ops_per_domain:per_domain
       ~worker:(fun ~pid:_ ~op_index:_ ->
         Mcore.Mc_baselines.Lock_counter.increment counter));
  check vi "exact" (domains * per_domain)
    (Mcore.Mc_baselines.Lock_counter.read counter)

let test_cas_maxreg_parallel_exact () =
  let domains = 4 and per_domain = 25_000 in
  let mr = Mcore.Mc_baselines.Cas_maxreg.create () in
  ignore
    (Mcore.Throughput.run ~domains ~ops_per_domain:per_domain
       ~worker:(fun ~pid ~op_index ->
         Mcore.Mc_baselines.Cas_maxreg.write mr ((op_index * domains) + pid)));
  check vi "exact max"
    (((per_domain - 1) * domains) + domains - 1)
    (Mcore.Mc_baselines.Cas_maxreg.read mr)

let test_throughput_reports () =
  let r =
    Mcore.Throughput.run ~domains:2 ~ops_per_domain:1_000
      ~worker:(fun ~pid:_ ~op_index:_ -> ())
  in
  check vi "domains" 2 r.domains;
  check vi "total ops" 2_000 r.total_ops;
  Alcotest.(check bool) "positive throughput" true (r.ops_per_sec > 0.0)

let test_kcounter_validation () =
  Alcotest.check_raises "k < 2"
    (Invalid_argument "Mc_kcounter.create: k < 2") (fun () ->
      ignore (Mcore.Mc_kcounter.create ~n:2 ~k:1 ()));
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Mc_kcounter.create: switch_capacity out of range")
    (fun () -> ignore (Mcore.Mc_kcounter.create ~switch_capacity:0 ~n:1 ~k:2 ()));
  (* The ceiling is exported and matches the packed encoding's range. *)
  check vi "max_capacity" (1 lsl 20) Mcore.Mc_kcounter.max_capacity;
  Alcotest.check_raises "capacity above ceiling"
    (Invalid_argument "Mc_kcounter.create: switch_capacity out of range")
    (fun () ->
      ignore
        (Mcore.Mc_kcounter.create
           ~switch_capacity:(Mcore.Mc_kcounter.max_capacity + 1)
           ~n:1 ~k:2 ()))

(* ------------------------------------------------------------------ *)
(* Packed announcement encoding                                        *)
(* ------------------------------------------------------------------ *)

let test_packed_roundtrip () =
  let cases =
    [ (0, 0); (0, 1); (1, 0); (1, 1);
      (Mcore.Packed.max_value, 0);
      (0, Mcore.Packed.sn_mask);
      (Mcore.Packed.max_value, Mcore.Packed.sn_mask);
      (12345, 6789) ]
  in
  List.iter
    (fun (value, sn) ->
      let p = Mcore.Packed.pack ~value ~sn in
      Alcotest.(check bool) "packed word non-negative" true (p >= 0);
      check vi (Printf.sprintf "value of pack(%d,%d)" value sn) value
        (Mcore.Packed.value p);
      check vi (Printf.sprintf "sn of pack(%d,%d)" value sn) sn
        (Mcore.Packed.sn p))
    cases;
  (* sn is stored modulo 2^sn_bits *)
  check vi "sn wraps" 1
    (Mcore.Packed.sn (Mcore.Packed.pack ~value:0 ~sn:(Mcore.Packed.sn_mask + 2)))

let test_packed_sn_delta () =
  let m = Mcore.Packed.sn_mask in
  check vi "no wrap" 2 (Mcore.Packed.sn_delta 5 3);
  check vi "wrap by one" 1 (Mcore.Packed.sn_delta 0 m);
  check vi "wrap by three" 3 (Mcore.Packed.sn_delta 1 (m - 1));
  check vi "equal" 0 (Mcore.Packed.sn_delta 7 7)

(* ------------------------------------------------------------------ *)
(* Padded helpers                                                      *)
(* ------------------------------------------------------------------ *)

let test_padded_int_array () =
  let a = Mcore.Padded.Int_array.make 5 3 in
  check vi "length" 5 (Mcore.Padded.Int_array.length a);
  check vi "init" 3 (Mcore.Padded.Int_array.get a 4);
  Mcore.Padded.Int_array.set a 2 10;
  check vi "set/get" 10 (Mcore.Padded.Int_array.get a 2);
  check vi "sum" (3 + 3 + 10 + 3 + 3) (Mcore.Padded.Int_array.sum a)

let test_padded_atomic () =
  let a = Mcore.Padded.atomic 7 in
  check vi "initial" 7 (Atomic.get a);
  Atomic.set a 9;
  check vi "set" 9 (Atomic.get a);
  check vi "faa" 9 (Atomic.fetch_and_add a 4);
  check vi "after faa" 13 (Atomic.get a);
  (* copy preserves record contents and mutability *)
  let r = Mcore.Padded.copy (ref 5) in
  r := 6;
  check vi "padded ref" 6 !r;
  (* non-blocks pass through *)
  check vi "immediate" 42 (Mcore.Padded.copy 42)

(* ------------------------------------------------------------------ *)
(* Switch-capacity growth                                              *)
(* ------------------------------------------------------------------ *)

let test_kcounter_capacity_growth () =
  let k = 2 in
  let counter = Mcore.Mc_kcounter.create ~switch_capacity:1 ~n:1 ~k () in
  (* The chunked switch directory rounds the hint up to whole chunks;
     directory growth itself is exercised at the backend level
     (test_backend.ml drives indices past the initial chunks). *)
  let cap0 = Mcore.Mc_kcounter.capacity counter in
  Alcotest.(check bool) "initial capacity covers the hint" true (cap0 >= 1);
  for v = 1 to 10_000 do
    Mcore.Mc_kcounter.increment counter ~pid:0;
    if v mod 100 = 0 then begin
      let x = Mcore.Mc_kcounter.read counter ~pid:0 in
      if not (Approx.Accuracy.within ~k ~exact:v x) then
        Alcotest.failf "read %d of count %d outside envelope after growth" x v
    end
  done;
  Alcotest.(check bool)
    "capacity still covers every set switch" true
    (Mcore.Mc_kcounter.capacity counter >= cap0)

(* ------------------------------------------------------------------ *)
(* Zero-allocation fast paths                                          *)
(* ------------------------------------------------------------------ *)

(* [Gc.minor_words] itself boxes its float result, so allow a small
   slack; any per-operation allocation over [ops] iterations would blow
   far past it. *)
let assert_no_alloc label ~ops f =
  let before = Gc.minor_words () in
  for i = 0 to ops - 1 do
    f i
  done;
  let after = Gc.minor_words () in
  let delta = after -. before in
  if delta > 256.0 then
    Alcotest.failf "%s allocated %.0f minor words over %d ops" label delta ops

let test_kcounter_increment_no_alloc () =
  let counter = Mcore.Mc_kcounter.create ~n:2 ~k:2 () in
  (* Warmup: cross several limit boundaries so announcements happen
     both before and during the measured window. *)
  for _ = 1 to 10_000 do
    Mcore.Mc_kcounter.increment counter ~pid:0
  done;
  assert_no_alloc "increment" ~ops:100_000 (fun _ ->
      Mcore.Mc_kcounter.increment counter ~pid:0)

let test_kcounter_read_no_alloc () =
  let counter = Mcore.Mc_kcounter.create ~n:2 ~k:2 () in
  for _ = 1 to 10_000 do
    Mcore.Mc_kcounter.increment counter ~pid:0
  done;
  ignore (Mcore.Mc_kcounter.read counter ~pid:1);
  assert_no_alloc "read" ~ops:10_000 (fun _ ->
      ignore (Mcore.Mc_kcounter.read counter ~pid:1))

let test_kmaxreg_no_alloc () =
  let mr = Mcore.Mc_kmaxreg.create ~m:(1 lsl 30) ~k:2 () in
  Mcore.Mc_kmaxreg.write mr 1;
  assert_no_alloc "maxreg write+read" ~ops:10_000 (fun i ->
      Mcore.Mc_kmaxreg.write mr (i + 1);
      ignore (Mcore.Mc_kmaxreg.read mr))

(* ------------------------------------------------------------------ *)
(* Accuracy stress across domains (the padded/packed hot paths)        *)
(* ------------------------------------------------------------------ *)

(* Every read must land in the k-multiplicative envelope of some count
   between the increments already completed when the read starts (lo)
   and all increments the run can possibly perform (hi): within the
   interval [lo/k, hi*k], i.e. within ~k of a witness in [lo, hi]. *)
let stress_accuracy ~domains () =
  let per_domain = 20_000 in
  let k = 2 in
  let counter = Mcore.Mc_kcounter.create ~n:domains ~k () in
  let completed = Array.init domains (fun _ -> Atomic.make 0) in
  let hi = domains * per_domain in
  let violations = Atomic.make 0 in
  ignore
    (Mcore.Throughput.run ~domains ~ops_per_domain:per_domain
       ~worker:(fun ~pid ~op_index ->
         if op_index mod 50 = 49 then begin
           let lo =
             Array.fold_left (fun acc c -> acc + Atomic.get c) 0 completed
           in
           let x = Mcore.Mc_kcounter.read counter ~pid in
           let ok =
             Approx.Accuracy.within ~k ~exact:lo x
             || Approx.Accuracy.within ~k ~exact:hi x
             || (lo <= x && x <= hi)
           in
           if not ok then Atomic.incr violations
         end
         else begin
           Mcore.Mc_kcounter.increment counter ~pid;
           Atomic.incr completed.(pid)
         end));
  check vi
    (Printf.sprintf "no envelope violations at domains=%d" domains)
    0 (Atomic.get violations);
  (* quiescent read must be k-accurate for the exact final count *)
  let final = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 completed in
  let x = Mcore.Mc_kcounter.read counter ~pid:0 in
  Alcotest.(check bool)
    (Printf.sprintf "quiescent read %d within envelope of %d" x final)
    true
    (Approx.Accuracy.within ~k ~exact:final x)

(* ------------------------------------------------------------------ *)
(* Throughput harness stats                                            *)
(* ------------------------------------------------------------------ *)

let test_throughput_measure_stats () =
  let s =
    Mcore.Throughput.measure ~warmup_trials:1 ~trials:5 ~domains:2
      ~ops_per_domain:500
      ~worker:(fun ~pid:_ ~op_index:_ -> ())
      ()
  in
  check vi "domains" 2 s.Mcore.Throughput.s_domains;
  check vi "trials" 5 s.Mcore.Throughput.s_trials;
  check vi "ops per trial" 1_000 s.Mcore.Throughput.s_ops_per_trial;
  Alcotest.(check bool) "min <= median" true
    (s.Mcore.Throughput.s_min_ops_per_sec
     <= s.Mcore.Throughput.s_median_ops_per_sec);
  Alcotest.(check bool) "median <= max" true
    (s.Mcore.Throughput.s_median_ops_per_sec
     <= s.Mcore.Throughput.s_max_ops_per_sec);
  Alcotest.(check bool) "positive" true
    (s.Mcore.Throughput.s_min_ops_per_sec > 0.0)

let test_sweep_domains () =
  let sweep = Mcore.Throughput.sweep_domains () in
  Alcotest.(check bool) "starts with 1;2" true
    (match sweep with 1 :: 2 :: _ -> true | _ -> false);
  List.iter
    (fun d ->
      Alcotest.(check bool) "within cap" true (d >= 1 && d <= 8))
    sweep;
  let capped = Mcore.Throughput.sweep_domains ~max_domains:2 () in
  Alcotest.(check (list int)) "capped at 2" [ 1; 2 ] capped

let test_mixed_worker_rates () =
  let incs = ref 0 and reads = ref 0 in
  let worker =
    Mcore.Throughput.mixed_worker Mcore.Throughput.read_heavy
      ~inc:(fun ~pid:_ -> incr incs)
      ~read:(fun ~pid:_ -> incr reads)
  in
  for op_index = 0 to 999 do
    worker ~pid:0 ~op_index
  done;
  check vi "read-heavy reads per 1000" 950 !reads;
  check vi "read-heavy incs per 1000" 50 !incs

let suite =
  [ ("kcounter sequential accuracy", `Quick, test_kcounter_sequential_accuracy);
    ("kcounter parallel quiescent", `Quick, test_kcounter_parallel_quiescent);
    ("kcounter parallel mixed", `Quick, test_kcounter_parallel_mixed_envelope);
    ("kmaxreg sequential", `Quick, test_kmaxreg_sequential);
    ("kmaxreg parallel watermark", `Quick, test_kmaxreg_parallel_watermark);
    ("faa parallel exact", `Quick, test_faa_parallel_exact);
    ("collect parallel exact", `Quick, test_collect_parallel_exact);
    ("lock parallel exact", `Quick, test_lock_parallel_exact);
    ("cas maxreg parallel exact", `Quick, test_cas_maxreg_parallel_exact);
    ("throughput reports", `Quick, test_throughput_reports);
    ("kcounter validation", `Quick, test_kcounter_validation);
    ("packed roundtrip", `Quick, test_packed_roundtrip);
    ("packed sn delta", `Quick, test_packed_sn_delta);
    ("padded int array", `Quick, test_padded_int_array);
    ("padded atomic", `Quick, test_padded_atomic);
    ("kcounter capacity growth", `Quick, test_kcounter_capacity_growth);
    ("kcounter increment zero-alloc", `Quick, test_kcounter_increment_no_alloc);
    ("kcounter read zero-alloc", `Quick, test_kcounter_read_no_alloc);
    ("kmaxreg zero-alloc", `Quick, test_kmaxreg_no_alloc);
    ("accuracy stress domains=1", `Quick, stress_accuracy ~domains:1);
    ("accuracy stress domains=2", `Quick, stress_accuracy ~domains:2);
    ("throughput measure stats", `Quick, test_throughput_measure_stats);
    ("sweep domains", `Quick, test_sweep_domains);
    ("mixed worker rates", `Quick, test_mixed_worker_rates) ]

let () = Alcotest.run "mcore" [ ("mcore", suite) ]
