(* End-to-end tests of the sharded service over a Unix-domain socket:
   correctness of served ops, the k-multiplicative accuracy self-check
   against the debug exact counter, the STATS op, bounded-queue
   backpressure, and chaos (clients killed mid-request must leave
   every shard serviceable). *)

module Srv = Service.Server
module Cl = Service.Client
module W = Service.Wire
module M = Service.Metrics

let check = Alcotest.check

let sock_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "approx_svc_test_%d_%d.sock" (Unix.getpid ()) !n)

let with_server ?config f =
  let srv = Srv.start ?config ~listen:(`Unix (sock_path ())) () in
  Fun.protect ~finally:(fun () -> Srv.stop srv) (fun () -> f srv)

let value_exn = function
  | W.Value { value; _ } -> value
  | _ -> Alcotest.fail "expected a Value reply"

let obj_stats srv name =
  List.find (fun o -> o.M.o_name = name) (M.objects (Srv.metrics srv))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  nl = 0 || go 0

(* Poll until [cond] holds or ~5s pass; chaos outcomes are observed by
   the server asynchronously. *)
let await cond =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    if (not (cond ())) && Unix.gettimeofday () < deadline then begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Basic serving                                                       *)
(* ------------------------------------------------------------------ *)

let test_basic_ops () =
  with_server (fun srv ->
      let c = Cl.connect (Srv.sockaddr srv) in
      Alcotest.(check bool) "ping" true (Cl.ping c);
      for _ = 1 to 100 do
        ignore (value_exn (Cl.inc c "faa"))
      done;
      check Alcotest.int "faa reads exactly" 100 (Cl.read_value c "faa");
      ignore (value_exn (Cl.write c "cas-maxreg" 4242));
      check Alcotest.int "cas-maxreg reads back the max" 4242
        (Cl.read_value c "cas-maxreg");
      ignore (value_exn (Cl.write c "kmaxreg" 1000));
      let served = Cl.read_value c "kmaxreg" in
      Alcotest.(check bool) "kmaxreg within [exact, k*exact]" true
        (served >= 1000 && served <= 1000 * 4);
      (match Cl.inc c "no-such-object" with
       | W.Unknown_object _ -> ()
       | _ -> Alcotest.fail "expected Unknown_object");
      (match Cl.write c "faa" 3 with
       | W.Bad_request _ -> ()
       | _ -> Alcotest.fail "expected Bad_request for WRITE on a counter");
      (match Cl.write c "kmaxreg" (-1) with
       | W.Bad_request _ -> ()
       | _ -> Alcotest.fail "expected Bad_request for out-of-range WRITE");
      Cl.close c)

let test_kcounter_accuracy () =
  with_server (fun srv ->
      let c = Cl.connect (Srv.sockaddr srv) in
      let exact = ref 0 in
      for round = 1 to 20 do
        for _ = 1 to round * 10 do
          ignore (value_exn (Cl.inc c "c0"));
          incr exact
        done;
        let served = value_exn (Cl.read_op c "c0") in
        Alcotest.(check bool)
          (Printf.sprintf "read %d within k-envelope of %d" served !exact)
          true
          (Zmath.within_k ~k:4 ~exact:!exact served)
      done;
      (* The server's own self-check agrees. *)
      let stats = obj_stats srv "c0" in
      check Alcotest.int "20 self-checks ran" 20 stats.M.acc_checks;
      check Alcotest.int "no self-check violations" 0 stats.M.acc_violations;
      check Alcotest.int "exact shadow tracked every inc" !exact
        stats.M.last_exact;
      Cl.close c)

let test_add_op () =
  with_server (fun srv ->
      let c = Cl.connect (Srv.sockaddr srv) in
      (* Exact baseline: ADD sums deltas precisely. *)
      ignore (value_exn (Cl.add c "faa" 0));
      for i = 1 to 50 do
        ignore (value_exn (Cl.add c "faa" i))
      done;
      check Alcotest.int "faa sums the deltas exactly" 1275
        (Cl.read_value c "faa");
      (* Approximate counter: envelope against the exact shadow. *)
      let exact = ref 0 in
      for i = 1 to 30 do
        ignore (value_exn (Cl.add c "c0" (i * 7)));
        exact := !exact + (i * 7)
      done;
      let served = Cl.read_value c "c0" in
      Alcotest.(check bool)
        (Printf.sprintf "ADD total %d served within envelope (%d)" !exact
           served)
        true
        (Zmath.within_k ~k:4 ~exact:!exact served);
      let stats = obj_stats srv "c0" in
      check Alcotest.int "adds counted" 30 stats.M.adds;
      check Alcotest.int "exact shadow tracks the deltas" !exact
        stats.M.last_exact;
      (* Rejection: negative and oversized deltas, non-counter target. *)
      (match Cl.add c "c0" (-1) with
       | W.Bad_request _ -> ()
       | _ -> Alcotest.fail "negative delta accepted");
      (match Cl.add c "c0" (Service.Objects.max_add_delta + 1) with
       | W.Bad_request _ -> ()
       | _ -> Alcotest.fail "oversized delta accepted");
      (match Cl.add c "kmaxreg" 5 with
       | W.Bad_request _ -> ()
       | _ -> Alcotest.fail "ADD on a max register accepted");
      (match Cl.add c "no-such-object" 1 with
       | W.Unknown_object _ -> ()
       | _ -> Alcotest.fail "expected Unknown_object");
      Cl.close c)

(* ------------------------------------------------------------------ *)
(* Drain-batch fusion                                                  *)
(* ------------------------------------------------------------------ *)

(* Server-level fusion counts are timing-dependent (they depend on how
   many tasks each drain happens to pop), so the deterministic test
   drives the Objects fusion API directly; the wire-level test below
   only asserts value correctness and counter consistency. *)
let test_objects_fusion_deterministic () =
  let metrics = M.create ~shards:1 ~io_domains:1 () in
  let table =
    Service.Objects.build ~metrics ~shards:1
      (Service.Objects.default_specs ~counters:1 ~k:4)
  in
  let o = Option.get (Service.Objects.find table "c0") in
  Alcotest.(check bool) "first defer dirties" true
    (Service.Objects.defer o ~via_add:false 1);
  Alcotest.(check bool) "second defer finds it dirty" false
    (Service.Objects.defer o ~via_add:true 41);
  Service.Objects.apply_pending o ~pid:0;
  let stats = Service.Objects.stats o in
  check Alcotest.int "one inc recorded" 1 stats.M.incs;
  check Alcotest.int "one add recorded" 1 stats.M.adds;
  let v1 = Service.Objects.batch_read o ~pid:0 ~stamp:1 in
  let v2 = Service.Objects.batch_read o ~pid:0 ~stamp:1 in
  check Alcotest.int "same drain stamp memoizes the value" v1 v2;
  check Alcotest.int "memo hit counted" 1 stats.M.batch_read_hits;
  check Alcotest.int "both reads counted" 2 stats.M.reads;
  Alcotest.(check bool) "fused value within envelope of 42" true
    (Zmath.within_k ~k:4 ~exact:42 v1);
  check Alcotest.int "self-check ran once (memo hit skips it)" 1
    stats.M.acc_checks;
  check Alcotest.int "no violations" 0 stats.M.acc_violations;
  Alcotest.(check bool) "defer after apply dirties anew" true
    (Service.Objects.defer o ~via_add:false 1);
  Service.Objects.apply_pending o ~pid:0;
  let v3 = Service.Objects.batch_read o ~pid:0 ~stamp:2 in
  Alcotest.(check bool) "new stamp recomputes within envelope" true
    (Zmath.within_k ~k:4 ~exact:43 v3)

let test_pipelined_fusion_burst () =
  (* max_pending must exceed the burst or the tail gets BUSY replies. *)
  let config = { Srv.default_config with shards = 1; max_pending = 1_000 } in
  with_server ~config (fun srv ->
      let c = Cl.connect (Srv.sockaddr srv) in
      let total = ref 0 in
      let reads = ref [] in
      let nops = 300 in
      for id = 0 to nops - 1 do
        if id mod 3 = 2 then Cl.send c (W.Read { id; name = "faa" })
        else begin
          Cl.send c (W.Inc { id; name = "faa" });
          incr total
        end
      done;
      Cl.flush c;
      for _ = 1 to nops do
        match Cl.recv c with
        | W.Value { id; value } ->
          if id mod 3 = 2 then reads := value :: !reads
          else check Alcotest.int "inc acks with 0" 0 value
        | W.Busy _ -> Alcotest.fail "unexpected BUSY (pending bound raised)"
        | _ -> Alcotest.fail "unexpected reply under the burst"
      done;
      (* All ops were concurrently in flight, so any monotone read
         sequence bounded by the final exact count is linearizable;
         shard-serial execution makes it monotone in reply order. *)
      ignore
        (List.fold_left
           (fun prev v ->
             Alcotest.(check bool)
               (Printf.sprintf "read %d monotone and <= %d" v !total)
               true
               (v >= prev && v <= !total);
             v)
           0 (List.rev !reads));
      check Alcotest.int "final count exact" !total (Cl.read_value c "faa");
      (* Every executed INC went through the defer/apply fusion path. *)
      let sh = M.shard (Srv.metrics srv) 0 in
      check Alcotest.int "every inc was deferred" !total sh.M.deferred_ops;
      Alcotest.(check bool) "bulk applies happened" true
        (sh.M.fused_applies >= 1 && sh.M.fused_applies <= !total);
      Cl.close c)

(* ------------------------------------------------------------------ *)
(* Loadgen against a 4-shard server                                    *)
(* ------------------------------------------------------------------ *)

let test_loadgen_4_shards poller () =
  let config = { Srv.default_config with shards = 4; poller } in
  with_server ~config (fun srv ->
      let cfg =
        { Service.Loadgen.default_config with
          connections = 3;
          ops_per_connection = 2_000;
          pipeline = 16;
          seed = 11;
          poller }
      in
      let r = Service.Loadgen.run ~addrs:[ Srv.sockaddr srv ] cfg in
      check Alcotest.int "no protocol errors" 0 r.Service.Loadgen.errors;
      check Alcotest.int "every op completed" 6_000
        (r.Service.Loadgen.ok + r.Service.Loadgen.busy);
      Alcotest.(check bool) "throughput measured" true
        (r.Service.Loadgen.ops_per_sec > 0.0);
      Alcotest.(check bool) "p50 <= p99" true
        (r.Service.Loadgen.p50_ns <= r.Service.Loadgen.p99_ns);
      check Alcotest.int "latency histogram holds every op" 6_000
        (Service.Histogram.count r.Service.Loadgen.latency);
      let m = Srv.metrics srv in
      check Alcotest.int "no accuracy violations under load" 0
        (M.acc_violations_total m);
      Alcotest.(check bool) "ops were recorded" true (M.total_ops m > 0);
      for s = 0 to config.Srv.shards - 1 do
        let sh = M.shard m s in
        check Alcotest.int
          (Printf.sprintf "shard %d latency samples = tasks" s)
          sh.M.tasks
          (Service.Histogram.count sh.M.s_latency)
      done;
      (* STATS over the wire: JSON text with live counters. *)
      let c = Cl.connect (Srv.sockaddr srv) in
      let json = Cl.stats_json c in
      Cl.close c;
      Alcotest.(check bool) "stats is a JSON object" true (json.[0] = '{');
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "stats mentions %S" needle)
            true (contains ~needle json))
        [ "\"acc_violations_total\": 0"; "latency_ns"; "read_batch";
          "\"kind\": \"kcounter\""; "total_ops";
          Printf.sprintf "\"poller\": %S" (Srv.poller_name srv);
          "max_ready_batch"; "\"poller_rejects\": 0" ])

(* ------------------------------------------------------------------ *)
(* Backpressure                                                        *)
(* ------------------------------------------------------------------ *)

let test_backpressure_bounded () =
  (* A 1-deep shard queue + 1-task batches against a 4000-request
     pipelined burst: the server must answer every request (BUSY at
     saturation), never buffer unboundedly, and keep serving after. *)
  let config =
    { Srv.default_config with
      shards = 1;
      queue_capacity = 1;
      max_batch = 1;
      max_pending = 1_000_000 }
  in
  with_server ~config (fun srv ->
      let c = Cl.connect (Srv.sockaddr srv) in
      let burst = 4_000 in
      for id = 0 to burst - 1 do
        Cl.send c (W.Inc { id; name = "c0" })
      done;
      Cl.flush c;
      let ok = ref 0 and busy = ref 0 in
      for _ = 1 to burst do
        match Cl.recv c with
        | W.Value _ -> incr ok
        | W.Busy _ -> incr busy
        | _ -> Alcotest.fail "unexpected reply under burst"
      done;
      check Alcotest.int "every request answered" burst (!ok + !busy);
      Alcotest.(check bool) "some requests served" true (!ok > 0);
      (* The connection is still fully serviceable afterwards. *)
      Alcotest.(check bool) "ping after burst" true (Cl.ping c);
      (* Exactly the accepted increments reached the object. *)
      check Alcotest.int "served increments counted exactly" !ok
        (obj_stats srv "c0").M.incs;
      check Alcotest.int "busy replies counted" !busy
        (M.busy_replies (Srv.metrics srv));
      Cl.close c)

let test_max_pending_bound () =
  let config = { Srv.default_config with shards = 1; max_pending = 4 } in
  with_server ~config (fun srv ->
      let c = Cl.connect (Srv.sockaddr srv) in
      (* Sequential (closed-loop, window 1) ops never trip the bound. *)
      for _ = 1 to 50 do
        ignore (value_exn (Cl.inc c "c0"))
      done;
      check Alcotest.int "sequential ops all served" 0
        (M.busy_replies (Srv.metrics srv));
      Cl.close c)

(* ------------------------------------------------------------------ *)
(* Connection lifecycle: churn, max_conns, multi-loop ownership        *)
(* ------------------------------------------------------------------ *)

let open_fds () = Array.length (Sys.readdir "/proc/self/fd")

let raw_connect addr =
  let fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
  in
  Unix.connect fd addr;
  fd

let test_connection_churn poller () =
  let config = { Srv.default_config with poller } in
  with_server ~config (fun srv ->
      let m = Srv.metrics srv in
      (* One throwaway connection first so lazy allocations (client
         buffers etc.) don't count against the baseline. *)
      let c = Cl.connect (Srv.sockaddr srv) in
      Alcotest.(check bool) "ping" true (Cl.ping c);
      Cl.close c;
      await (fun () -> M.closed m >= 1);
      let fd_baseline = open_fds () in
      let rounds = 50 in
      for _ = 1 to rounds do
        let c = Cl.connect (Srv.sockaddr srv) in
        ignore (value_exn (Cl.inc c "faa"));
        Cl.close c
      done;
      await (fun () -> M.closed m >= rounds + 1);
      check Alcotest.int "every churned conn reaped" (rounds + 1) (M.closed m);
      check Alcotest.int "accept counter matches" (rounds + 1) (M.accepted m);
      check Alcotest.int "live-connection counter drained" 0
        (Srv.live_connections srv);
      check Alcotest.int "owned-connection gauge drained" 0 (M.owned_conns m);
      check Alcotest.int "no fd leak across churn" fd_baseline (open_fds ()))

let test_max_conns_enforced poller () =
  let config = { Srv.default_config with max_conns = 2; poller } in
  with_server ~config (fun srv ->
      let addr = Srv.sockaddr srv in
      let c1 = Cl.connect addr and c2 = Cl.connect addr in
      Alcotest.(check bool) "conn 1 served" true (Cl.ping c1);
      Alcotest.(check bool) "conn 2 served" true (Cl.ping c2);
      (* The third connection is accepted and immediately closed; the
         client observes EOF (or a reset, if its write races the
         close). *)
      let v = raw_connect addr in
      let eof =
        let b = Bytes.create 16 in
        match Unix.read v b 0 16 with
        | 0 -> true
        | _ -> false
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> true
      in
      Alcotest.(check bool) "over-limit conn sees EOF" true eof;
      (try Unix.close v with Unix.Unix_error _ -> ());
      let m = Srv.metrics srv in
      await (fun () -> M.accepted m >= 3 && M.closed m >= 1);
      check Alcotest.int "rejection counted as accept+close" 3 (M.accepted m);
      check Alcotest.int "only the reject closed" 1 (M.closed m);
      check Alcotest.int "live count excludes the reject" 2
        (Srv.live_connections srv);
      (* Closing an admitted connection frees a slot: the next connect
         is served. *)
      Cl.close c2;
      await (fun () -> Srv.live_connections srv < 2);
      let c3 = Cl.connect addr in
      Alcotest.(check bool) "slot reuse after close" true (Cl.ping c3);
      (* Both survivors still work. *)
      Alcotest.(check bool) "original conn unaffected" true (Cl.ping c1);
      Cl.close c3;
      Cl.close c1)

let test_multi_io_domain_load poller () =
  let config =
    { Srv.default_config with shards = 4; io_domains = 4; poller }
  in
  with_server ~config (fun srv ->
      let cfg =
        { Service.Loadgen.default_config with
          connections = 8;
          ops_per_connection = 2_000;
          pipeline = 8;
          read_permille = 300;
          add_permille = 200;
          seed = 7;
          poller }
      in
      let r = Service.Loadgen.run ~addrs:[ Srv.sockaddr srv ] cfg in
      check Alcotest.int "no protocol errors" 0 r.Service.Loadgen.errors;
      check Alcotest.int "every op completed" 16_000
        (r.Service.Loadgen.ok + r.Service.Loadgen.busy);
      let m = Srv.metrics srv in
      check Alcotest.int "no accuracy violations across loops" 0
        (M.acc_violations_total m);
      check Alcotest.int "four io loops" 4 (M.io_domains m);
      await (fun () -> M.closed m >= 8);
      (* Round-robin dealing: 8 connections over 4 loops, so every loop
         owned (and by now reaped) its share and did real work. *)
      for l = 0 to 3 do
        let il = M.io_loop m l in
        Alcotest.(check bool)
          (Printf.sprintf "loop %d owned connections" l)
          true (il.M.l_closed >= 2);
        Alcotest.(check bool)
          (Printf.sprintf "loop %d ran active cycles" l)
          true (il.M.l_cycles >= 1);
        Alcotest.(check bool)
          (Printf.sprintf "loop %d cycle histogram consistent" l)
          true
          (Service.Histogram.count il.M.l_cycle_ns = il.M.l_cycles)
      done;
      check Alcotest.int "owned-connection gauges drained" 0 (M.owned_conns m);
      Alcotest.(check bool) "shard wakeups reached the loops" true
        (let total = ref 0 in
         for l = 0 to 3 do
           total := !total + (M.io_loop m l).M.l_wakeups
         done;
         !total > 0);
      (* Per-loop observability is visible over the wire. *)
      let c = Cl.connect (Srv.sockaddr srv) in
      let json = Cl.stats_json c in
      Cl.close c;
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "stats mentions %S" needle)
            true (contains ~needle json))
        [ "io_loops"; "\"io_domains\": 4"; "owned_conns"; "cycle_ns";
          "flush_bytes"; "wakeups"; "\"loop\": 3" ])

(* ------------------------------------------------------------------ *)
(* Chaos: dead clients and poisonous frames                            *)
(* ------------------------------------------------------------------ *)

let test_kill_client_mid_request () =
  let config = { Srv.default_config with shards = 2 } in
  with_server ~config (fun srv ->
      let addr = Srv.sockaddr srv in
      (* Victim 1 dies mid-frame: a header announcing 20 payload bytes
         followed by only 3 of them, then the socket vanishes. *)
      let v1 = raw_connect addr in
      let torn = Buffer.create 8 in
      Buffer.add_int32_be torn 20l;
      Buffer.add_string torn "\x01ab";
      let tb = Buffer.to_bytes torn in
      ignore (Unix.write v1 tb 0 (Bytes.length tb));
      Unix.close v1;
      (* Victim 2 sends a complete request and dies without reading the
         response (exercises the dead-connection write path). *)
      let v2 = Cl.connect addr in
      Cl.send v2 (W.Inc { id = 7; name = "c1" });
      Cl.flush v2;
      Cl.close v2;
      (* Victim 3 sends an oversized frame header; the server must
         reject and close it. *)
      let v3 = raw_connect addr in
      let big = Buffer.create 8 in
      Buffer.add_int32_be big 0x7FFFFFFFl;
      let bb = Buffer.to_bytes big in
      ignore (Unix.write v3 bb 0 (Bytes.length bb));
      let m = Srv.metrics srv in
      await (fun () -> M.oversized_frames m >= 1);
      check Alcotest.int "oversized frame rejected" 1 (M.oversized_frames m);
      (try Unix.close v3 with Unix.Unix_error _ -> ());
      await (fun () -> M.closed m >= 3);
      check Alcotest.int "all victims reaped" 3 (M.closed m);
      (* Both shards must still be fully serviceable. *)
      let c = Cl.connect addr in
      for _ = 1 to 25 do
        ignore (value_exn (Cl.inc c "c0"));
        ignore (value_exn (Cl.inc c "c1"));
        ignore (value_exn (Cl.inc c "faa"))
      done;
      check Alcotest.int "exact counter consistent after chaos" 25
        (Cl.read_value c "faa");
      Alcotest.(check bool) "k-counter still within envelope" true
        (Zmath.within_k ~k:4 ~exact:25 (Cl.read_value c "c0"));
      Alcotest.(check bool) "ping" true (Cl.ping c);
      check Alcotest.int "no accuracy violations after chaos" 0
        (M.acc_violations_total m);
      Cl.close c)

(* The lifecycle/load suites run once per compiled-in poller backend:
   the select fallback everywhere, epoll where the stubs are built. *)
let pollers =
  ("select", Service.Poller.Select)
  :: (if Service.Poller.epoll_available then [ ("epoll", Service.Poller.Epoll) ]
      else [])

let per_poller mk =
  List.concat_map
    (fun (label, poller) ->
      List.map
        (fun (name, speed, test) ->
          (Printf.sprintf "%s [%s]" name label, speed, test poller))
        (mk ()))
    pollers

let () =
  Alcotest.run "service_server"
    [ ("serving",
       [ ("basic ops and error replies", `Quick, test_basic_ops);
         ("ADD: exact sums, envelope, rejection", `Quick, test_add_op);
         ("k-counter accuracy self-check", `Quick, test_kcounter_accuracy) ]
       @ per_poller (fun () ->
             [ ("loadgen against 4 shards", `Quick, test_loadgen_4_shards) ]));
      ("fusion",
       [ ("objects-level defer/apply/batch_read", `Quick,
          test_objects_fusion_deterministic);
         ("pipelined burst through the fused drain", `Quick,
          test_pipelined_fusion_burst) ]);
      ("backpressure",
       [ ("bounded queue answers BUSY, stays up", `Quick,
          test_backpressure_bounded);
         ("sequential load never trips pending bound", `Quick,
          test_max_pending_bound) ]);
      ("lifecycle",
       per_poller (fun () ->
           [ ("connection churn leaks no fds", `Quick, test_connection_churn);
             ("max_conns enforced with O(1) accounting", `Quick,
              test_max_conns_enforced);
             ("accuracy and ownership across 4 io domains", `Quick,
              test_multi_io_domain_load) ]));
      ("chaos",
       [ ("clients killed mid-request", `Quick, test_kill_client_mid_request) ])
    ]
