(* Backend-matrix tests for the Poller: the same contract checked on
   every compiled-in backend (select everywhere, epoll on Linux), plus
   backend-specific edges — select's FD_SETSIZE ceiling and epoll's
   behaviour across kernel fd-number reuse. *)

module P = Service.Poller

let check = Alcotest.check

let backends =
  ("select", P.Select)
  :: (if P.epoll_available then [ ("epoll", P.Epoll) ] else [])

let with_poller choice f =
  let p = P.create ~choice () in
  Fun.protect ~finally:(fun () -> P.close p) (fun () -> f p)

let with_pair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  Unix.set_nonblock b;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_byte fd = ignore (Unix.write fd (Bytes.make 1 'x') 0 1)

let ready_read_slots p =
  List.init (P.ready_reads p) (P.ready_read p) |> List.sort compare

let ready_write_slots p =
  List.init (P.ready_writes p) (P.ready_write p) |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Contract tests, run on every backend                                *)
(* ------------------------------------------------------------------ *)

let test_readiness choice () =
  with_poller choice (fun p ->
      with_pair (fun a b ->
          let sa = P.register p a "a" and sb = P.register p b "b" in
          check Alcotest.int "two live slots" 2 (P.live p);
          P.set_read p sa true;
          P.set_read p sb true;
          (* Nothing pending: no readiness. *)
          P.wait p ~timeout:0.0;
          check (Alcotest.list Alcotest.int) "idle pair not readable" []
            (ready_read_slots p);
          (* One byte into b makes a (and only a) readable. *)
          write_byte b;
          P.wait p ~timeout:1.0;
          check (Alcotest.list Alcotest.int) "peer byte wakes a" [ sa ]
            (ready_read_slots p);
          check
            (Alcotest.option Alcotest.string)
            "slot carries its payload" (Some "a") (P.data p sa);
          (* Level-triggered: un-drained data keeps reporting. *)
          P.wait p ~timeout:0.0;
          check (Alcotest.list Alcotest.int) "level-triggered re-report"
            [ sa ] (ready_read_slots p);
          (* Interest off silences it without draining. *)
          P.set_read p sa false;
          P.wait p ~timeout:0.0;
          check (Alcotest.list Alcotest.int) "interest off silences" []
            (ready_read_slots p);
          (* Write interest on an un-backlogged socket fires at once. *)
          P.set_write p sb true;
          P.wait p ~timeout:1.0;
          check (Alcotest.list Alcotest.int) "empty socket writable" [ sb ]
            (ready_write_slots p)))

(* The self-pipe wake contract: many queued wake bytes must collapse
   into one readiness entry per wait, never one entry per byte. *)
let test_wake_dedup choice () =
  with_poller choice (fun p ->
      let r, w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock r;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close r with Unix.Unix_error _ -> ());
          try Unix.close w with Unix.Unix_error _ -> ())
        (fun () ->
          let slot = P.register p r "wake" in
          P.set_read p slot true;
          for _ = 1 to 16 do
            write_byte w
          done;
          P.wait p ~timeout:1.0;
          check Alcotest.int "16 wake bytes, one ready entry" 1
            (P.ready_reads p);
          check Alcotest.int "the wake slot" slot (P.ready_read p 0);
          (* Drain and the level-triggered report stops. *)
          let buf = Bytes.create 64 in
          ignore (Unix.read r buf 0 64);
          P.wait p ~timeout:0.0;
          check Alcotest.int "drained pipe quiet" 0 (P.ready_reads p)))

let test_slot_recycling choice () =
  with_poller choice (fun p ->
      with_pair (fun a b ->
          let sa = P.register p a "a" in
          let sb = P.register p b "b" in
          P.unregister p sa;
          check Alcotest.int "one live slot after unregister" 1 (P.live p);
          check
            (Alcotest.option Alcotest.string)
            "freed slot has no payload" None (P.data p sa);
          (* Unregister is idempotent. *)
          P.unregister p sa;
          check Alcotest.int "idempotent unregister" 1 (P.live p);
          (* The freed id is recycled for the next registration. *)
          with_pair (fun c _ ->
              let sc = P.register p c "c" in
              check Alcotest.int "slot id recycled" sa sc;
              check
                (Alcotest.option Alcotest.string)
                "recycled slot carries the new payload" (Some "c")
                (P.data p sc);
              check
                (Alcotest.option Alcotest.string)
                "survivor untouched" (Some "b") (P.data p sb);
              let seen = ref [] in
              P.iter p (fun s d -> seen := (s, d) :: !seen);
              check Alcotest.int "iter visits the live slots" 2
                (List.length !seen))))

(* Close an fd, let the kernel hand the same number back, register the
   new fd: the old slot's readiness must not leak onto the new one and
   no stale event may surface. This is the epoll fd-reuse edge (the
   kernel identity is (fd, file description), the API identity is the
   slot) but the contract holds for both backends. *)
let test_fd_reuse_no_stale_readiness choice () =
  with_poller choice (fun p ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.set_nonblock a;
      let old_num : int = Obj.magic a in
      let sa = P.register p a "old" in
      P.set_read p sa true;
      write_byte b;
      P.wait p ~timeout:1.0;
      check Alcotest.int "old fd readable" 1 (P.ready_reads p);
      (* Tear down: unregister, close — the pending byte dies with the
         socket. *)
      P.unregister p sa;
      Unix.close a;
      Unix.close b;
      (* Linux reuses the lowest free fd number: the very next socket
         gets the old number back. *)
      let c, d = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.set_nonblock c;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close c with Unix.Unix_error _ -> ());
          try Unix.close d with Unix.Unix_error _ -> ())
        (fun () ->
          check Alcotest.int "kernel reused the fd number" old_num
            (Obj.magic c : int);
          let sc = P.register p c "new" in
          check Alcotest.int "slot recycled too" sa sc;
          P.set_read p sc true;
          P.wait p ~timeout:0.0;
          check Alcotest.int "no stale readiness on the reused fd" 0
            (P.ready_reads p);
          (* The new registration still works normally. *)
          write_byte d;
          P.wait p ~timeout:1.0;
          check Alcotest.int "fresh byte, fresh readiness" 1
            (P.ready_reads p);
          check
            (Alcotest.option Alcotest.string)
            "readiness carries the new payload" (Some "new")
            (P.data p (P.ready_read p 0))))

(* ------------------------------------------------------------------ *)
(* Backend-specific edges                                              *)
(* ------------------------------------------------------------------ *)

(* select cannot watch fd numbers at or above FD_SETSIZE; the backend
   must refuse the registration (Backend_limit) instead of letting the
   whole wait loop die with EINVAL. *)
let test_select_fd_setsize_limit () =
  with_poller P.Select (fun p ->
      with_pair (fun a _ ->
          let high = 4_000 in
          let high_fd : Unix.file_descr = Obj.magic high in
          Unix.dup2 a high_fd;
          Fun.protect
            ~finally:(fun () ->
              try Unix.close high_fd with Unix.Unix_error _ -> ())
            (fun () ->
              (match P.register p high_fd "high" with
               | _ -> Alcotest.fail "fd 4000 accepted by select backend"
               | exception P.Backend_limit _ -> ());
              check Alcotest.int "failed register leaves no slot" 0
                (P.live p);
              (* The poller is still usable for watchable fds. *)
              let sa = P.register p a "a" in
              P.set_write p sa true;
              P.wait p ~timeout:1.0;
              check Alcotest.int "poller still serviceable" 1
                (P.ready_writes p))))

let test_choice_resolution () =
  check
    (Alcotest.option Alcotest.string)
    "round-trip epoll" (Some "epoll")
    (Option.map P.choice_to_string (P.choice_of_string "epoll"));
  check (Alcotest.option Alcotest.string) "unknown rejected" None
    (Option.map P.choice_to_string (P.choice_of_string "kqueue"));
  with_poller P.Auto (fun p ->
      let expected = if P.epoll_available then "epoll" else "select" in
      check Alcotest.string "auto resolves to the best backend" expected
        (P.name p));
  if not P.epoll_available then
    match P.create ~choice:P.Epoll () with
    | (_ : unit P.t) -> Alcotest.fail "epoll created while unavailable"
    | exception P.Unavailable _ -> ()

let suite_for (label, choice) =
  ( label,
    [ ("readiness, interest flips, level-trigger", `Quick,
       test_readiness choice);
      ("wake-pipe bytes dedup to one entry", `Quick, test_wake_dedup choice);
      ("slot recycling and ownership", `Quick, test_slot_recycling choice);
      ("fd-number reuse delivers no stale readiness", `Quick,
       test_fd_reuse_no_stale_readiness choice) ] )

let () =
  Alcotest.run "service_poller"
    (List.map suite_for backends
     @ [ ("edges",
          [ ("select refuses fd >= FD_SETSIZE", `Quick,
             test_select_fd_setsize_limit);
            ("choice parsing and auto resolution", `Quick,
             test_choice_resolution) ]) ])
