(* The durability plane in isolation: qcheck roundtrips for the entry
   codec, the WAL and the snapshot format; the torn-tail property (any
   byte-truncation of the log replays a clean prefix, never an error);
   snapshot+log recovery merge; the zero-allocation warm append path;
   and a deterministic kill -9 chaos test through the real server
   binary. *)

let check = Alcotest.check

module D = Persist.Delta
module O = Persist.Obuf

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_name =
  QCheck.Gen.(
    string_size ~gen:(map Char.chr (int_range 97 122)) (int_range 1 24))

let gen_delta =
  QCheck.Gen.(
    frequency
      [ (3,
         map
           (fun l -> D.Counter (Array.of_list l))
           (list_size (int_range 1 8) (int_range 0 1_000_000)));
        (1, map (fun v -> D.Max v) (int_range 0 1_000_000_000)) ])

let gen_entries ~min ~max =
  QCheck.Gen.(list_size (int_range min max) (pair gen_name gen_delta))

let print_entries es =
  String.concat "; "
    (List.map (fun (n, d) -> Printf.sprintf "%s=%s" n (D.to_string d)) es)

let arb_entries ~min ~max =
  QCheck.make ~print:print_entries (gen_entries ~min ~max)

let entry_equal (n1, d1) (n2, d2) = n1 = n2 && D.equal d1 d2

let entries_equal a b =
  List.length a = List.length b && List.for_all2 entry_equal a b

(* Fresh private directory per property case; the contents are flat
   (wal.log, snapshot.dat, rename temps). *)
let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "approx_persist_test_%d_%d" (Unix.getpid ()) !dir_counter)

let rm_dir dir =
  (match Sys.readdir dir with
   | entries ->
     Array.iter
       (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
       entries
   | exception Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_dir dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Codec roundtrip                                                     *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip =
  QCheck.Test.make ~count:500 ~name:"codec entry roundtrip"
    (arb_entries ~min:0 ~max:20)
    (fun entries ->
      let buf = O.create () in
      List.iter (Persist.Codec.add_entry buf) entries;
      let b = O.bytes buf and stop = O.length buf in
      let rec parse acc pos =
        if pos >= stop then List.rev acc
        else
          match Persist.Codec.parse_entry b ~pos ~stop with
          | None -> QCheck.Test.fail_report "parse failed mid-buffer"
          | Some (e, next) -> parse (e :: acc) next
      in
      let parsed = parse [] 0 in
      (* entry_len must agree with what add_entry produced. *)
      let expected_len =
        List.fold_left (fun acc e -> acc + Persist.Codec.entry_len e) 0 entries
      in
      entries_equal entries parsed && expected_len = stop)

(* ------------------------------------------------------------------ *)
(* WAL roundtrip and torn tail                                         *)
(* ------------------------------------------------------------------ *)

let write_wal dir entries =
  let wal =
    Persist.Wal.open_ ~dir ~fsync:Persist.Wal.Never
      ~scan:(Persist.Wal.scan ~dir)
  in
  List.iter (Persist.Wal.append wal) entries;
  Persist.Wal.flush wal;
  Persist.Wal.close wal

let test_wal_roundtrip =
  QCheck.Test.make ~count:60 ~name:"WAL write/scan roundtrip"
    (arb_entries ~min:0 ~max:20)
    (fun entries ->
      with_dir (fun dir ->
          write_wal dir entries;
          let s = Persist.Wal.scan ~dir in
          entries_equal entries s.Persist.Wal.s_entries
          && s.Persist.Wal.s_base = 0
          && s.Persist.Wal.s_next = List.length entries
          && not s.Persist.Wal.s_torn))

let is_prefix_of shorter longer =
  List.length shorter <= List.length longer
  && List.for_all2 entry_equal shorter
       (List.filteri (fun i _ -> i < List.length shorter) longer)

let test_wal_torn_tail =
  QCheck.Test.make ~count:100
    ~name:"byte-truncated WAL replays a prefix, never errors"
    QCheck.(
      make
        ~print:(fun (es, f) ->
          Printf.sprintf "(%s, cut=%f)" (print_entries es) f)
        Gen.(pair (gen_entries ~min:1 ~max:12) (float_bound_inclusive 1.0)))
    (fun (entries, frac) ->
      with_dir (fun dir ->
          write_wal dir entries;
          let path = Filename.concat dir "wal.log" in
          let full = (Unix.stat path).Unix.st_size in
          let cut = int_of_float (frac *. float_of_int full) in
          let cut = if cut >= full then full - 1 else cut in
          Unix.truncate path (max 0 cut);
          let s = Persist.Wal.scan ~dir in
          (* Any cut strictly inside the file yields a clean prefix of
             the original records; recovery composes on top without
             raising either. *)
          let r = Persist.Recovery.run ~dir in
          is_prefix_of s.Persist.Wal.s_entries entries
          && r.Persist.Recovery.r_replayed_records
             = List.length s.Persist.Wal.s_entries))

let test_wal_truncate_upto () =
  with_dir (fun dir ->
      let entries =
        List.init 10 (fun i ->
            (Printf.sprintf "o%d" i, D.Counter [| i; i + 1 |]))
      in
      let wal =
        Persist.Wal.open_ ~dir ~fsync:Persist.Wal.Never
          ~scan:(Persist.Wal.scan ~dir)
      in
      List.iter (Persist.Wal.append wal) entries;
      Persist.Wal.flush wal;
      check Alcotest.int "next index" 10 (Persist.Wal.next_index wal);
      Persist.Wal.truncate_upto wal 6;
      Persist.Wal.append wal ("tail", D.Max 99);
      Persist.Wal.flush wal;
      Persist.Wal.close wal;
      let s = Persist.Wal.scan ~dir in
      check Alcotest.int "base after truncation" 6 s.Persist.Wal.s_base;
      check Alcotest.int "next after truncation" 11 s.Persist.Wal.s_next;
      check Alcotest.bool "not torn" false s.Persist.Wal.s_torn;
      check Alcotest.bool "surviving records"
        true
        (entries_equal s.Persist.Wal.s_entries
           (List.filteri (fun i _ -> i >= 6) entries @ [ ("tail", D.Max 99) ])))

(* ------------------------------------------------------------------ *)
(* Snapshot roundtrip and recovery merge                               *)
(* ------------------------------------------------------------------ *)

let test_snapshot_roundtrip =
  QCheck.Test.make ~count:60 ~name:"snapshot write/load roundtrip"
    QCheck.(
      make
        ~print:(fun (es, i) ->
          Printf.sprintf "(%s, idx=%d)" (print_entries es) i)
        Gen.(pair (gen_entries ~min:0 ~max:20) (int_range 0 1_000_000)))
    (fun (entries, wal_index) ->
      with_dir (fun dir ->
          Persist.Snapshot.write ~dir ~wal_index entries;
          match Persist.Snapshot.load ~dir with
          | None -> false
          | Some (loaded, idx) ->
            idx = wal_index && entries_equal entries loaded))

let test_snapshot_corrupt_ignored () =
  with_dir (fun dir ->
      Persist.Snapshot.write ~dir ~wal_index:3
        [ ("c", D.Counter [| 1; 2 |]) ];
      let path = Persist.Snapshot.path dir in
      (* Flip a payload byte: the frame CRC must reject the file. *)
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      let size = (Unix.fstat fd).Unix.st_size in
      ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1);
      Unix.close fd;
      check Alcotest.bool "corrupt snapshot ignored" true
        (Persist.Snapshot.load ~dir = None);
      (* Recovery still runs on the WAL alone. *)
      let r = Persist.Recovery.run ~dir in
      check Alcotest.bool "snapshot not loaded" false
        r.Persist.Recovery.r_snapshot_loaded)

let test_recovery_merges_snapshot_and_log () =
  with_dir (fun dir ->
      Persist.Snapshot.write ~dir ~wal_index:1
        [ ("c0", D.Counter [| 5; 0 |]); ("m", D.Max 10) ];
      write_wal dir
        [ ("c0", D.Counter [| 2; 7 |]); ("m", D.Max 4);
          ("new", D.Counter [| 3 |]) ];
      let r = Persist.Recovery.run ~dir in
      check Alcotest.bool "snapshot loaded" true
        r.Persist.Recovery.r_snapshot_loaded;
      check Alcotest.int "replayed records" 3
        r.Persist.Recovery.r_replayed_records;
      let find name = List.assoc name r.Persist.Recovery.r_state in
      check Alcotest.bool "counter is pointwise max" true
        (D.equal (find "c0") (D.Counter [| 5; 7 |]));
      check Alcotest.bool "max register joins" true
        (D.equal (find "m") (D.Max 10));
      check Alcotest.bool "log-only object present" true
        (D.equal (find "new") (D.Counter [| 3 |])))

(* ------------------------------------------------------------------ *)
(* Warm append path allocates nothing                                  *)
(* ------------------------------------------------------------------ *)

(* [Gc.minor_words] itself boxes its float result, so allow a small
   slack; any per-record allocation over [ops] iterations would blow
   far past it. *)
let assert_no_alloc label ~ops f =
  let before = Gc.minor_words () in
  for i = 0 to ops - 1 do
    f i
  done;
  let after = Gc.minor_words () in
  let delta = after -. before in
  if delta > 256.0 then
    Alcotest.failf "%s allocated %.0f minor words over %d ops" label delta ops

let test_warm_append_no_alloc () =
  with_dir (fun dir ->
      let wal =
        Persist.Wal.open_ ~dir ~fsync:Persist.Wal.Never
          ~scan:(Persist.Wal.scan ~dir)
      in
      Fun.protect
        ~finally:(fun () -> Persist.Wal.close wal)
        (fun () ->
          let entry = ("warmobj", D.Counter [| 1; 2; 3; 4 |]) in
          (* Warm: grow the staging buffer to steady state. *)
          for _ = 1 to 64 do
            Persist.Wal.append wal entry;
            Persist.Wal.flush wal
          done;
          assert_no_alloc "append+flush (fsync never)" ~ops:10_000 (fun _ ->
              Persist.Wal.append wal entry;
              Persist.Wal.flush wal)))

(* ------------------------------------------------------------------ *)
(* Deterministic kill -9 chaos through the real server binary          *)
(* ------------------------------------------------------------------ *)

let binary = "../bin/approx_cli.exe"

let start_server ~dir ~sock =
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process binary
      [| binary; "serve"; "--unix"; sock; "--shards"; "2"; "--io-domains";
         "1"; "--duration"; "60"; "--data-dir"; dir; "--fsync"; "never";
         "--snapshot-interval-ms"; "100" |]
      devnull devnull devnull
  in
  Unix.close devnull;
  pid

let wait_for_socket sock ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Service.Client.connect (Unix.ADDR_UNIX sock) with
    | c ->
      Service.Client.close c;
      true
    | exception Unix.Unix_error _ ->
      if Unix.gettimeofday () >= deadline then false
      else begin
        Unix.sleepf 0.05;
        go ()
      end
  in
  go ()

let scan_int json key =
  let needle = Printf.sprintf "\"%s\": " key in
  let nl = String.length needle and hl = String.length json in
  let rec find i =
    if i + nl > hl then None
    else if String.sub json i nl = needle then Some (i + nl)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < hl
      && (match json.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
    do
      incr stop
    done;
    int_of_string_opt (String.sub json start (!stop - start))

let test_kill9_restart_replays () =
  with_dir (fun dir ->
      let sock = dir ^ ".sock" in
      let pid = ref (start_server ~dir ~sock) in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill !pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore
            (try Unix.waitpid [] !pid
             with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
          try Unix.unlink sock with Unix.Unix_error _ -> ())
        (fun () ->
          Alcotest.(check bool)
            "server up" true
            (wait_for_socket sock ~timeout_s:10.0);
          (* A pure-INC burst whose acks are all counted. *)
          let r =
            Service.Loadgen.run ~addrs:[ Unix.ADDR_UNIX sock ]
              { Service.Loadgen.default_config with
                connections = 2;
                ops_per_connection = 4_000;
                read_permille = 0;
                seed = 7 }
          in
          check Alcotest.int "burst errors" 0 r.Service.Loadgen.errors;
          let acked = r.Service.Loadgen.ok in
          (* The chaos: no shutdown path runs at all. *)
          (try Unix.kill !pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore
            (try Unix.waitpid [] !pid
             with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
          pid := start_server ~dir ~sock;
          Alcotest.(check bool)
            "server back up" true
            (wait_for_socket sock ~timeout_s:10.0);
          let stats =
            let c = Service.Client.connect (Unix.ADDR_UNIX sock) in
            Fun.protect
              ~finally:(fun () -> Service.Client.close c)
              (fun () -> Service.Client.stats_json c)
          in
          let replayed =
            Option.value ~default:0 (scan_int stats "recovery_replayed_records")
          in
          let snapshot_loaded =
            let needle = "\"recovery_snapshot_loaded\": true" in
            let nl = String.length needle and hl = String.length stats in
            let rec go i =
              i + nl <= hl
              && (String.sub stats i nl = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool)
            "state recovered from disk" true
            (replayed > 0 || snapshot_loaded);
          (* Sum the recovered counter contributions: every acked INC
             must be covered within the factor-k envelope (default
             specs run at k = 4). *)
          let recovered = ref 0 in
          let pos = ref 0 in
          let hl = String.length stats in
          let needle = "\"repl_own_total\": " in
          let nl = String.length needle in
          while !pos + nl <= hl do
            if String.sub stats !pos nl = needle then begin
              match scan_int (String.sub stats !pos (min 64 (hl - !pos)))
                      "repl_own_total"
              with
              | Some v -> recovered := !recovered + v
              | None -> ()
            end;
            incr pos
          done;
          Alcotest.(check bool)
            (Printf.sprintf
               "recovered within envelope (4 * %d >= %d acked)" !recovered
               acked)
            true
            (4 * !recovered >= acked);
          (* A follow-up burst on the recovered server passes its own
             self-check (no errors, no accuracy violations). *)
          let r2 =
            Service.Loadgen.run ~addrs:[ Unix.ADDR_UNIX sock ]
              { Service.Loadgen.default_config with
                connections = 2;
                ops_per_connection = 2_000;
                seed = 8 }
          in
          check Alcotest.int "follow-up errors" 0 r2.Service.Loadgen.errors;
          let stats2 =
            let c = Service.Client.connect (Unix.ADDR_UNIX sock) in
            Fun.protect
              ~finally:(fun () -> Service.Client.close c)
              (fun () -> Service.Client.stats_json c)
          in
          check Alcotest.int "no accuracy violations" 0
            (Option.value ~default:(-1)
               (scan_int stats2 "acc_violations_total"))))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "persist"
    [ ("codec", [ QCheck_alcotest.to_alcotest test_codec_roundtrip ]);
      ("wal",
       [ QCheck_alcotest.to_alcotest test_wal_roundtrip;
         QCheck_alcotest.to_alcotest test_wal_torn_tail;
         ("truncate_upto rotates the base", `Quick, test_wal_truncate_upto) ]);
      ("snapshot",
       [ QCheck_alcotest.to_alcotest test_snapshot_roundtrip;
         ("corrupt snapshot is ignored", `Quick,
          test_snapshot_corrupt_ignored) ]);
      ("recovery",
       [ ("snapshot + log merge", `Quick,
          test_recovery_merges_snapshot_and_log) ]);
      ("allocation",
       [ ("warm append+flush is alloc-free", `Quick,
          test_warm_append_no_alloc) ]);
      ("chaos",
       [ ("kill -9, restart, replay", `Quick, test_kill9_restart_replays) ])
    ]
