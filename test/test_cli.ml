(* Subprocess tests of the approx_cli driver: an unknown (or missing)
   subcommand must print usage to stderr and exit 2, while valid
   invocations keep working. *)

let binary = "../bin/approx_cli.exe"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run the CLI with [args]; return (exit status, stdout, stderr). *)
let run args =
  let out_path = Filename.temp_file "approx_cli_out" ".txt" in
  let err_path = Filename.temp_file "approx_cli_err" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove out_path with Sys_error _ -> ());
      (try Sys.remove err_path with Sys_error _ -> ()))
    (fun () ->
      let fd_out =
        Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      let fd_err =
        Unix.openfile err_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      let pid =
        Unix.create_process binary
          (Array.of_list (binary :: args))
          Unix.stdin fd_out fd_err
      in
      Unix.close fd_out;
      Unix.close fd_err;
      let _, status = Unix.waitpid [] pid in
      (status, read_file out_path, read_file err_path))

let exit_code = function
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED n -> Alcotest.fail (Printf.sprintf "killed by signal %d" n)
  | Unix.WSTOPPED n -> Alcotest.fail (Printf.sprintf "stopped by signal %d" n)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  nl = 0 || go 0

let test_unknown_subcommand () =
  let status, out, err = run [ "frobnicate" ] in
  Alcotest.(check int) "exit code 2" 2 (exit_code status);
  Alcotest.(check string) "nothing on stdout" "" out;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "stderr mentions %S" needle)
        true
        (contains ~needle err))
    [ "unknown command 'frobnicate'"; "usage: approx_cli COMMAND";
      "serve"; "loadgen"; "stats"; "bench" ]

let test_missing_subcommand () =
  let status, _, err = run [] in
  Alcotest.(check int) "exit code 2" 2 (exit_code status);
  Alcotest.(check bool) "stderr shows usage" true
    (contains ~needle:"usage: approx_cli COMMAND" err);
  Alcotest.(check bool) "stderr names the problem" true
    (contains ~needle:"missing command" err)

let test_unknown_with_options () =
  (* Options after the bogus command must not rescue it. *)
  let status, _, err = run [ "definitely-not-a-command"; "--ops"; "5" ] in
  Alcotest.(check int) "exit code 2" 2 (exit_code status);
  Alcotest.(check bool) "stderr shows usage" true
    (contains ~needle:"usage: approx_cli COMMAND" err)

let test_known_subcommand_still_works () =
  let status, out, err =
    run [ "counter"; "-n"; "2"; "-k"; "2"; "--ops"; "16"; "--seed"; "3" ]
  in
  Alcotest.(check int) "exit code 0" 0 (exit_code status);
  Alcotest.(check bool) "produced output" true (String.length out > 0);
  Alcotest.(check string) "stderr clean" "" err

let test_help_still_works () =
  let status, out, _ = run [ "--help" ] in
  Alcotest.(check int) "--help exits 0" 0 (exit_code status);
  Alcotest.(check bool) "help mentions commands" true
    (contains ~needle:"COMMAND" out)

let test_bad_poller_value () =
  let status, _, err =
    run [ "serve"; "--poller"; "kqueue"; "--duration"; "0.1" ]
  in
  (* cmdliner's reserved exit code for CLI parse errors. *)
  Alcotest.(check int) "bogus backend rejected at parse time" 124
    (exit_code status);
  Alcotest.(check bool) "stderr names the option" true
    (contains ~needle:"poller" err);
  Alcotest.(check bool) "stderr lists the valid backends" true
    (contains ~needle:"'auto', 'epoll' or 'select'" err)

(* A short-lived serve on each explicitly selectable backend: select
   everywhere; epoll must either run (Linux build) or be refused with
   exit 2 and a clear message — never a crash. *)
let test_poller_selection () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "approx_cli_poller_%d.sock" (Unix.getpid ()))
  in
  let serve p =
    run
      [ "serve"; "--unix"; sock; "--poller"; p; "--shards"; "1";
        "--duration"; "0.2" ]
  in
  let status, out, err = serve "select" in
  Alcotest.(check int) "select serve exits 0" 0 (exit_code status);
  Alcotest.(check bool) "banner reports poller=select" true
    (contains ~needle:"poller=select" out);
  Alcotest.(check string) "stderr clean" "" err;
  let status, out, err = serve "epoll" in
  (match exit_code status with
   | 0 ->
     Alcotest.(check bool) "banner reports poller=epoll" true
       (contains ~needle:"poller=epoll" out)
   | 2 ->
     Alcotest.(check bool) "refusal names the missing backend" true
       (contains ~needle:"epoll" err)
   | n -> Alcotest.fail (Printf.sprintf "epoll serve exited %d" n))

let () =
  Alcotest.run "cli"
    [ ("exit codes",
       [ ("unknown subcommand exits 2 with usage", `Quick,
          test_unknown_subcommand);
         ("missing subcommand exits 2 with usage", `Quick,
          test_missing_subcommand);
         ("unknown subcommand with options exits 2", `Quick,
          test_unknown_with_options);
         ("known subcommand still works", `Quick,
          test_known_subcommand_still_works);
         ("--help still works", `Quick, test_help_still_works) ]);
      ("poller flag",
       [ ("bad --poller value exits 2", `Quick, test_bad_poller_value);
         ("serve runs under each selectable backend", `Quick,
          test_poller_selection) ])
    ]
