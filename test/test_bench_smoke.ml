(* Fast-path smoke test for the perf pipeline: tiny trial counts, but
   the full code path — throughput measurements across domains=1,2,
   simulator metrics, JSON assembly, atomic file write. Keeps the
   BENCH_*.json machinery from silently bitrotting. *)

let check = Alcotest.check

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Bench_json                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_basic () =
  let open Mcore.Bench_json in
  check Alcotest.string "scalars" "[\n  null,\n  true,\n  3,\n  1.5\n]\n"
    (to_string (List [ Null; Bool true; Int 3; Float 1.5 ]));
  check Alcotest.string "empty containers" "{\n  \"a\": [],\n  \"b\": {}\n}\n"
    (to_string (Obj [ ("a", List []); ("b", Obj []) ]))

let test_json_escaping () =
  let open Mcore.Bench_json in
  check Alcotest.string "escapes"
    "\"a\\\"b\\\\c\\nd\\u0007\"\n"
    (to_string (Str "a\"b\\c\nd\007"))

let test_json_floats () =
  let open Mcore.Bench_json in
  check Alcotest.string "nan is null" "null\n" (to_string (Float Float.nan));
  check Alcotest.string "inf is null" "null\n"
    (to_string (Float Float.infinity));
  check Alcotest.string "integral keeps point" "2.0\n" (to_string (Float 2.0));
  check Alcotest.string "fractional" "0.25\n" (to_string (Float 0.25))

let test_json_atomic_write () =
  let path = Filename.temp_file "bench_json" ".json" in
  Mcore.Bench_json.write_file ~path (Mcore.Bench_json.Obj [ ("x", Int 1) ]);
  Alcotest.(check bool) "no tmp left behind" false
    (Sys.file_exists (path ^ ".tmp"));
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check Alcotest.string "contents" "{\n  \"x\": 1\n}\n" s

(* ------------------------------------------------------------------ *)
(* Pipeline smoke                                                      *)
(* ------------------------------------------------------------------ *)

let test_pipeline_smoke () =
  let path = Filename.temp_file "bench_smoke" ".json" in
  let cfg = { Perf.Pipeline.smoke_config with out_path = path } in
  let record = Perf.Pipeline.run ~quiet:true cfg in
  (match Perf.Pipeline.kcounter_read_heavy_median record with
   | Some m -> Alcotest.(check bool) "read-heavy median positive" true (m > 0.0)
   | None -> Alcotest.fail "no kcounter read-heavy median in record");
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty" true (String.length s > 0);
  Alcotest.(check bool) "json object" true (s.[0] = '{');
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "record mentions %S" needle)
        true (contains ~needle s))
    [ "\"schema_version\": 9"; "counter_throughput"; "maxreg_throughput";
      "amortized_steps_per_op"; "ops_per_sec_median"; "ops_per_sec_min";
      "ops_per_sec_max"; "kcounter"; "faa"; "\"domains\": 1";
      "\"domains\": 2"; "\"service\""; "\"shards\": 2"; "p50_ns"; "p99_ns";
      "\"errors\": 0"; "\"acc_violations\": 0"; "\"fastpath\"";
      "read_ablation"; "inc_batching"; "\"variant\": \"cached\"";
      "\"variant\": \"uncached\""; "increments_per_sec_median";
      "effective_cores"; "cores_source"; "\"mix\": \"add-heavy\"";
      "fused_applies"; "deferred_ops"; "batch_read_hits"; "\"service_io\"";
      "\"io_domains\": 1"; "\"io_domains\": 2"; "active_cycles"; "wakeups";
      "\"service_io_scale\""; "\"poller\""; "poller_rejects";
      "max_ready_batch"; "\"poller\": \"select\"";
      "ops_per_sec_per_conn_median"; "\"server_mode\": \"in-process\"";
      "\"service_cluster\""; "\"nodes\": 3"; "\"replicas\": 2";
      "\"chaos\": true"; "\"converged\": true";
      "\"staleness_violations\": 0"; "gossip_frames_sent";
      "gossip_entries_merged"; "\"k_staleness\": 2"; "\"k_total\": 8";
      "\"reconnects\""; "\"service_durability\""; "\"variant\": \"off\"";
      "\"variant\": \"never\""; "\"variant\": \"every-n-32\"";
      "\"variant\": \"interval-5ms\"";
      "\"variant\": \"never-every-op\""; "wal_appends"; "wal_flushes";
      "\"fsyncs\""; "\"snapshots\""; "appends_every_op_over_envelope";
      "write_heavy_wal_overhead_pct"; "p95_ns"; "max_ns"; "\"zipf_s\": 1.2";
      "-hotkey"; "\"mlp\""; "\"variant\": \"boxed-walk\"";
      "\"variant\": \"flat\""; "flat_over_boxed_speedup";
      "\"finals_agree\": true"; "boxed_heap_bytes";
      "largest_cell_flat_over_boxed_speedup"; "\"all_finals_agree\": true";
      "\"service_cluster_comms\""; "\"wire\": \"legacy\"";
      "\"wire\": \"compact\""; "gossip_bytes_sent";
      "gossip_bytes_suppressed"; "gossip_digest_rounds";
      "gossip_repair_objects"; "legacy_over_compact_bytes_ratio";
      "min_legacy_over_compact_bytes_ratio"; "\"all_cells_clean\": true";
      "\"healed\": true"; "heal_bytes"; "diverged_counters" ]

let suite =
  [ ("json basic", `Quick, test_json_basic);
    ("json escaping", `Quick, test_json_escaping);
    ("json floats", `Quick, test_json_floats);
    ("json atomic write", `Quick, test_json_atomic_write);
    ("pipeline smoke", `Quick, test_pipeline_smoke) ]

let () = Alcotest.run "bench_smoke" [ ("bench_smoke", suite) ]
