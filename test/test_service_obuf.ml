(* The zero-copy output path: Obuf growth/swap semantics, byte-for-byte
   parity between the Buffer and Obuf response encoders, and the
   zero-allocation guarantee of the warm encode -> swap -> write cycle
   that the server's flush path relies on. *)

module W = Service.Wire
module O = Service.Obuf

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Obuf semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_obuf_basic () =
  let b = O.create ~size:4 () in
  check Alcotest.int "empty" 0 (O.length b);
  O.add_string b "hello";
  O.add_u8 b 33;
  check Alcotest.int "length tracks appends" 6 (O.length b);
  check Alcotest.string "contents" "hello!" (O.contents b);
  Alcotest.(check bool) "grew past the initial size" true (O.capacity b >= 6);
  O.clear b;
  check Alcotest.int "clear resets length" 0 (O.length b);
  Alcotest.(check bool) "clear keeps storage" true (O.capacity b >= 6)

let test_obuf_integers () =
  let b = O.create () in
  O.add_i32_be b 0x01020304;
  O.add_i64_be b 0x05060708090A0B;
  let expect = Buffer.create 12 in
  Buffer.add_int32_be expect 0x01020304l;
  Buffer.add_int64_be expect 0x05060708090A0BL;
  check Alcotest.string "big-endian layout matches Buffer" (Buffer.contents expect)
    (O.contents b)

let test_obuf_swap () =
  let a = O.create () and b = O.create () in
  O.add_string a "aaaa";
  O.add_string b "bb";
  let sa = O.bytes a and sb = O.bytes b in
  O.swap a b;
  check Alcotest.string "a has b's bytes" "bb" (O.contents a);
  check Alcotest.string "b has a's bytes" "aaaa" (O.contents b);
  (* Swap exchanges storage, it does not copy. *)
  Alcotest.(check bool) "storage exchanged, not copied" true
    (O.bytes a == sb && O.bytes b == sa)

(* ------------------------------------------------------------------ *)
(* Encoder parity                                                      *)
(* ------------------------------------------------------------------ *)

let arbitrary_response =
  let open QCheck in
  let id_gen = Gen.int_bound 0x3FFFFFFF in
  let resp_gen =
    Gen.oneof
      [ Gen.map2
          (fun id value -> W.Value { id; value })
          id_gen
          Gen.(map (fun v -> v - (1 lsl 30)) (int_bound (1 lsl 31)));
        Gen.map (fun id -> W.Busy { id }) id_gen;
        Gen.map (fun id -> W.Unknown_object { id }) id_gen;
        Gen.map (fun id -> W.Bad_request { id }) id_gen;
        Gen.map (fun id -> W.Pong { id }) id_gen;
        Gen.map2
          (fun id json -> W.Stats_json { id; json })
          id_gen
          Gen.(string_size (int_bound 64)) ]
  in
  make resp_gen

let test_encoder_parity =
  QCheck.Test.make ~count:500 ~name:"Obuf encoder = Buffer encoder"
    arbitrary_response (fun resp ->
      let buf = Buffer.create 64 in
      W.encode_response buf resp;
      let ob = O.create () in
      W.encode_response_obuf ob resp;
      Buffer.contents buf = O.contents ob)

(* ------------------------------------------------------------------ *)
(* Steady-state flush cycle allocates nothing                          *)
(* ------------------------------------------------------------------ *)

let assert_no_alloc label ~ops f =
  let before = Gc.minor_words () in
  for i = 0 to ops - 1 do
    f i
  done;
  let after = Gc.minor_words () in
  let delta = after -. before in
  if delta > 256.0 then
    Alcotest.failf "%s allocated %.0f minor words over %d ops" label delta ops

(* The server's per-cycle output work, warm: encode a response into the
   write side, O(1)-swap it to the flush side and push it with a
   [Unix.write]. After the first cycles have sized both buffers, the
   loop must stay off the OCaml heap entirely. *)
let test_flush_cycle_no_alloc () =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close null)
    (fun () ->
      let out = O.create () and flush = O.create () in
      let resp = W.Value { id = 7; value = 123456789 } in
      (* Warm both storages through a few full cycles. *)
      for _ = 1 to 8 do
        W.encode_response_obuf out resp;
        O.swap out flush;
        O.clear out;
        ignore (Unix.write null (O.bytes flush) 0 (O.length flush));
        O.clear flush
      done;
      assert_no_alloc "encode+swap+write cycle" ~ops:50_000 (fun _ ->
          W.encode_response_obuf out resp;
          O.swap out flush;
          O.clear out;
          ignore (Unix.write null (O.bytes flush) 0 (O.length flush));
          O.clear flush))

let () =
  Alcotest.run "service_obuf"
    [ ("obuf",
       [ ("append, grow, clear", `Quick, test_obuf_basic);
         ("big-endian integers", `Quick, test_obuf_integers);
         ("O(1) storage swap", `Quick, test_obuf_swap) ]);
      ("encoding",
       [ QCheck_alcotest.to_alcotest test_encoder_parity ]);
      ("allocation",
       [ ("warm flush cycle is alloc-free", `Quick,
          test_flush_cycle_no_alloc) ]) ]
