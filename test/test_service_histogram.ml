(* The service latency histogram: bucket-boundary edge cases (exact
   powers of two), the zero-count percentile contract, monotonicity
   properties, and the allocation-free record hot path. *)

module H = Service.Histogram

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)
(* ------------------------------------------------------------------ *)

let test_bucket_boundaries () =
  check Alcotest.int "0 -> bucket 0" 0 (H.bucket_index 0);
  check Alcotest.int "1 -> bucket 0" 0 (H.bucket_index 1);
  check Alcotest.int "negative clamps to 0" 0 (H.bucket_index (-5));
  (* An exact power of two is the LOWER boundary of its own bucket. *)
  for i = 1 to 61 do
    let v = 1 lsl i in
    check Alcotest.int (Printf.sprintf "2^%d" i) i (H.bucket_index v);
    check Alcotest.int (Printf.sprintf "2^%d - 1" i) (i - 1)
      (H.bucket_index (v - 1));
    check Alcotest.int (Printf.sprintf "2^%d + 1" i) i (H.bucket_index (v + 1))
  done;
  check Alcotest.int "max_int lands in the last bucket" (H.buckets - 1)
    (H.bucket_index max_int)

let test_bounds_cover () =
  for i = 0 to H.buckets - 1 do
    check Alcotest.int
      (Printf.sprintf "lo bucket %d maps to itself" i)
      i
      (H.bucket_index (H.bucket_lo i));
    check Alcotest.int
      (Printf.sprintf "hi bucket %d maps to itself" i)
      i
      (H.bucket_index (H.bucket_hi i))
  done;
  check Alcotest.int "last hi is max_int" max_int (H.bucket_hi (H.buckets - 1))

let test_empty_percentile () =
  let h = H.create () in
  check Alcotest.int "empty p50 is 0, not an exception" 0 (H.percentile h 0.5);
  check Alcotest.int "empty p0" 0 (H.percentile h 0.0);
  check Alcotest.int "empty p100" 0 (H.percentile h 1.0);
  check Alcotest.int "empty count" 0 (H.count h)

let test_percentile_clamps () =
  let h = H.create () in
  H.record h 10;
  check Alcotest.int "p < 0 clamps" (H.percentile h 0.0) (H.percentile h (-3.0));
  check Alcotest.int "p > 1 clamps" (H.percentile h 1.0) (H.percentile h 7.0)

let test_single_sample () =
  let h = H.create () in
  H.record h 1000;
  let hi = H.bucket_hi (H.bucket_index 1000) in
  check Alcotest.int "p50 is the sample's bucket hi" hi (H.percentile h 0.5);
  check Alcotest.int "p99 too" hi (H.percentile h 0.99);
  check Alcotest.int "sum" 1000 (H.sum h)

let test_merge_and_reset () =
  let a = H.create () and b = H.create () in
  List.iter (H.record a) [ 1; 2; 3 ];
  List.iter (H.record b) [ 100; 200 ];
  H.merge ~into:a b;
  check Alcotest.int "merged count" 5 (H.count a);
  check Alcotest.int "merged sum" 306 (H.sum a);
  H.reset a;
  check Alcotest.int "reset count" 0 (H.count a);
  check Alcotest.int "reset percentile" 0 (H.percentile a 0.99)

let test_record_no_alloc () =
  let h = H.create () in
  H.record h 5;
  let before = Gc.minor_words () in
  for i = 0 to 9_999 do
    H.record h (i * 17)
  done;
  let after = Gc.minor_words () in
  if after -. before > 256.0 then
    Alcotest.failf "record allocated %.0f minor words" (after -. before)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let nonneg = QCheck.map abs QCheck.int

let prop_index_monotone =
  QCheck.Test.make ~count:1000 ~name:"bucket_index is monotone"
    (QCheck.pair nonneg nonneg) (fun (a, b) ->
      let lo = min a b and hi = max a b in
      H.bucket_index lo <= H.bucket_index hi)

let prop_value_within_bucket =
  QCheck.Test.make ~count:1000 ~name:"v sits inside its bucket's bounds"
    nonneg (fun v ->
      let i = H.bucket_index v in
      H.bucket_lo i <= v && v <= H.bucket_hi i)

let prop_cumulative_monotone =
  QCheck.Test.make ~count:200
    ~name:"percentile is monotone in p and bounded by recorded range"
    (QCheck.list_of_size (QCheck.Gen.int_range 1 50) (QCheck.map abs QCheck.small_int))
    (fun samples ->
      let h = H.create () in
      List.iter (H.record h) samples;
      let ps = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let vals = List.map (H.percentile h) ps in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      let max_hi = H.bucket_hi (H.bucket_index (List.fold_left max 0 samples)) in
      sorted vals && List.for_all (fun v -> v <= max_hi) vals)

let prop_count_preserved =
  QCheck.Test.make ~count:200 ~name:"count equals samples recorded"
    (QCheck.list (QCheck.map abs QCheck.small_int)) (fun samples ->
      let h = H.create () in
      List.iter (H.record h) samples;
      H.count h = List.length samples)

let () =
  Alcotest.run "service_histogram"
    [ ("edge-cases",
       [ ("bucket boundaries at exact powers", `Quick, test_bucket_boundaries);
         ("bucket bounds self-consistent", `Quick, test_bounds_cover);
         ("zero-count percentile is 0", `Quick, test_empty_percentile);
         ("percentile clamps p", `Quick, test_percentile_clamps);
         ("single sample", `Quick, test_single_sample);
         ("merge and reset", `Quick, test_merge_and_reset);
         ("record allocates nothing", `Quick, test_record_no_alloc) ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_index_monotone;
           prop_value_within_bucket;
           prop_cumulative_monotone;
           prop_count_preserved ]) ]
