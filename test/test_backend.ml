(* Tests for the primitive-backend layer itself: Atomic switch growth
   and its capacity ceiling, per-pid step accounting on both backends,
   and determinism of the Chaos decorator's fault injection. *)

let check = Alcotest.check
let vi = Alcotest.int

module AB = Backend.Atomic_backend
module Chaos_atomic = Backend.Chaos_backend.Make (Backend.Atomic_backend)
module Chaos_sim = Backend.Chaos_backend.Make (Sim_backend)

(* ------------------------------------------------------------------ *)
(* Atomic test&set arrays: growth and the capacity ceiling             *)
(* ------------------------------------------------------------------ *)

let test_atomic_ts_growth () =
  let c = AB.ctx () in
  let ts = AB.ts_array c ~capacity_hint:1 () in
  (* Capacity is the hint rounded up to whole flat chunks. *)
  let cap0 = AB.ts_capacity ts in
  Alcotest.(check bool) "initial capacity covers the hint" true (cap0 >= 1);
  Alcotest.(check bool) "set 0" true (AB.test_and_set ts ~pid:0 0);
  Alcotest.(check bool) "re-set 0 fails" false (AB.test_and_set ts ~pid:0 0);
  (* Touching an index past the initial chunks installs a larger
     directory without disturbing set bits (the chunks are shared). *)
  Alcotest.(check bool) "set past capacity" true
    (AB.test_and_set ts ~pid:0 (cap0 + 40));
  Alcotest.(check bool) "grown" true (AB.ts_capacity ts >= cap0 + 41);
  Alcotest.(check bool) "bit 0 survives growth" true (AB.ts_read ts ~pid:0 0);
  Alcotest.(check bool) "grown bit set" true (AB.ts_read ts ~pid:0 (cap0 + 40));
  Alcotest.(check bool) "bit 7 clear" false (AB.ts_read ts ~pid:0 7);
  (* Reading beyond the physical chunks is false, never an error. *)
  Alcotest.(check bool) "read past capacity" false
    (AB.ts_read ts ~pid:0 (AB.ts_max_capacity - 1))

let test_atomic_ts_ceiling () =
  let c = AB.ctx () in
  let ts = AB.ts_array c ~capacity_hint:1 () in
  check vi "ceiling is 2^20" (1 lsl 20) AB.ts_max_capacity;
  (* The exception carries the offending index and the ceiling. *)
  (try
     ignore (AB.test_and_set ts ~pid:0 AB.ts_max_capacity);
     Alcotest.fail "expected Ts_capacity_exceeded"
   with AB.Ts_capacity_exceeded { index; max_capacity } ->
     check vi "index" AB.ts_max_capacity index;
     check vi "max_capacity" AB.ts_max_capacity max_capacity);
  (* The rejected probe must not have corrupted the array. *)
  Alcotest.(check bool) "still usable" true (AB.test_and_set ts ~pid:0 3)

let test_atomic_ts_states () =
  let c = AB.ctx () in
  let ts = AB.ts_array c ~capacity_hint:4 () in
  ignore (AB.test_and_set ts ~pid:0 1);
  ignore (AB.test_and_set ts ~pid:0 3);
  let states = AB.ts_states ts in
  check vi "dump covers the materialised capacity" (AB.ts_capacity ts)
    (List.length states);
  Alcotest.(check (list int))
    "set switches" [ 1; 3 ]
    (List.filter_map (fun (i, b) -> if b then Some i else None) states);
  Alcotest.(check (list (pair int bool)))
    "indices in order, prefix as expected"
    [ (0, false); (1, true); (2, false); (3, true) ]
    (List.filteri (fun i _ -> i < 4) states)

(* ------------------------------------------------------------------ *)
(* Step accounting                                                     *)
(* ------------------------------------------------------------------ *)

let test_atomic_step_counting () =
  let c = AB.ctx ~count_steps:2 () in
  let r = AB.reg c 0 in
  for _ = 1 to 3 do
    ignore (AB.read r ~pid:0)
  done;
  AB.write r ~pid:1 7;
  AB.write r ~pid:1 9;
  check vi "pid 0 steps" 3 (AB.steps c ~pid:0);
  check vi "pid 1 steps" 2 (AB.steps c ~pid:1);
  (* A non-counting context reports 0 at zero bookkeeping cost. *)
  let c0 = AB.ctx () in
  let r0 = AB.reg c0 0 in
  ignore (AB.read r0 ~pid:0);
  check vi "uncounted" 0 (AB.steps c0 ~pid:0)

let test_sim_step_counting () =
  let exec = Sim.Exec.create ~n:2 () in
  let c = Sim_backend.ctx exec in
  let r = Sim_backend.reg c ~name:"r" 0 in
  let programs =
    [| (fun _ ->
         ignore (Sim_backend.read r ~pid:0);
         ignore (Sim_backend.read r ~pid:0);
         ignore (Sim_backend.read r ~pid:0));
       (fun _ ->
         Sim_backend.write r ~pid:1 5;
         Sim_backend.write r ~pid:1 6) |]
  in
  let outcome = Sim.Exec.run exec ~programs ~policy:Sim.Schedule.Round_robin () in
  (* Backend counters coincide with the simulator's charged steps. *)
  check vi "pid 0 steps" 3 (Sim_backend.steps c ~pid:0);
  check vi "pid 1 steps" 2 (Sim_backend.steps c ~pid:1);
  check vi "total charged" 5 outcome.steps_total

let test_sim_pause_is_charged () =
  let exec = Sim.Exec.create ~n:1 () in
  let c = Sim_backend.ctx exec in
  let programs = [| (fun _ -> Sim_backend.pause c ~pid:0) |] in
  let outcome = Sim.Exec.run exec ~programs ~policy:Sim.Schedule.Round_robin () in
  check vi "pause charges one step" 1 outcome.steps_total

(* ------------------------------------------------------------------ *)
(* Chaos decorator                                                     *)
(* ------------------------------------------------------------------ *)

(* A fixed primitive sequence against a chaos-wrapped counting Atomic
   backend; the per-pid step counts include injected pauses, so equal
   counts mean an identical injection pattern. *)
let chaos_trial ~seed ~rate =
  let inner = AB.ctx ~count_steps:2 () in
  let c = Chaos_atomic.ctx ~rate ~seed ~n:2 inner in
  let r = Chaos_atomic.reg c 0 in
  for i = 1 to 50 do
    Chaos_atomic.write r ~pid:0 i;
    ignore (Chaos_atomic.read r ~pid:1)
  done;
  (AB.steps inner ~pid:0, AB.steps inner ~pid:1)

let test_chaos_deterministic () =
  Alcotest.(check (pair int int))
    "same seed, same injections" (chaos_trial ~seed:11 ~rate:4)
    (chaos_trial ~seed:11 ~rate:4);
  let s0, s1 = chaos_trial ~seed:11 ~rate:1 in
  (* rate = 1 injects before every primitive: strictly more than the 50
     primitives each pid issues. *)
  Alcotest.(check bool) "pid 0 pauses injected" true (s0 > 50);
  Alcotest.(check bool) "pid 1 pauses injected" true (s1 > 50)

let test_chaos_sim_pauses_charged () =
  (* Over the simulator, injected pauses are charged no-op steps: with
     rate = 1 the execution takes strictly more steps than the 10
     primitives the program issues. *)
  let exec = Sim.Exec.create ~n:1 () in
  let c = Chaos_sim.ctx ~rate:1 ~seed:3 ~n:1 (Sim_backend.ctx exec) in
  let r = Chaos_sim.reg c 0 in
  let programs =
    [| (fun _ ->
         for i = 1 to 10 do
           Chaos_sim.write r ~pid:0 i
         done) |]
  in
  let outcome = Sim.Exec.run exec ~programs ~policy:Sim.Schedule.Round_robin () in
  Alcotest.(check bool)
    (Printf.sprintf "%d steps for 10 primitives" outcome.steps_total)
    true
    (outcome.steps_total > 10)

let test_chaos_preserves_values () =
  (* Injection must never change what the primitives compute. *)
  let inner = AB.ctx () in
  let c = Chaos_atomic.ctx ~rate:1 ~seed:7 ~n:1 inner in
  let ts = Chaos_atomic.ts_array c ~capacity_hint:1 () in
  Alcotest.(check bool) "ts first" true (Chaos_atomic.test_and_set ts ~pid:0 2);
  Alcotest.(check bool) "ts second" false (Chaos_atomic.test_and_set ts ~pid:0 2);
  let cell = Chaos_atomic.cas_cell c 0 in
  Alcotest.(check bool) "cas" true
    (Chaos_atomic.compare_and_set cell ~pid:0 ~expect:0 ~value:42);
  check vi "cas value" 42 (Chaos_atomic.cas_read cell ~pid:0)

let suite =
  [ ("atomic ts growth", `Quick, test_atomic_ts_growth);
    ("atomic ts ceiling", `Quick, test_atomic_ts_ceiling);
    ("atomic ts states", `Quick, test_atomic_ts_states);
    ("atomic step counting", `Quick, test_atomic_step_counting);
    ("sim step counting", `Quick, test_sim_step_counting);
    ("sim pause charged", `Quick, test_sim_pause_is_charged);
    ("chaos deterministic", `Quick, test_chaos_deterministic);
    ("chaos sim pauses charged", `Quick, test_chaos_sim_pauses_charged);
    ("chaos preserves values", `Quick, test_chaos_preserves_values) ]

let () = Alcotest.run "backend" [ ("backend", suite) ]
