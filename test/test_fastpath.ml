(* Slack-aware fast paths: validated-cache reads ([read_fast]) and
   bulk increments ([add]).

   - A qcheck property replays arbitrary sequential interleavings of
     inc/add/read/read_fast over three backend instantiations (sim,
     atomic, chaos(atomic)) and checks that all three produce the same
     observable read sequence and that every read — cached or not —
     stays inside the k-multiplicative envelope of an exact shadow
     count.
   - Sim step accounting: a cache-hit read_fast costs exactly one
     charged primitive step (the watermark load), and [add] is
     step-for-step equivalent to the unit increments it batches, so
     Theorem III.9's amortized accounting is preserved verbatim.
   - Gc.minor_words: the cache-hit read and the bulk add allocate
     nothing on the atomic backend.
   - The kmaxreg validated cache agrees with the plain read, including
     the degraded custom-inner case. *)

let check = Alcotest.check

module SK = Algo.Kcounter_algo.Make (Sim_backend)
module AK = Algo.Kcounter_algo.Make (Backend.Atomic_backend)
module Chaos_atomic = Backend.Chaos_backend.Make (Backend.Atomic_backend)
module CK = Algo.Kcounter_algo.Make (Chaos_atomic)
module AM = Algo.Kmaxreg_algo.Make (Backend.Atomic_backend)
module AT = Algo.Tree_maxreg_algo.Make (Backend.Atomic_backend)
module AColl = Algo.Collect_counter_algo.Make (Backend.Atomic_backend)

(* ------------------------------------------------------------------ *)
(* Cross-backend differential property                                 *)
(* ------------------------------------------------------------------ *)

let n = 3
let k = 2

let op_to_string (pid, op) =
  match op with
  | `Inc -> Printf.sprintf "i%d" pid
  | `Add d -> Printf.sprintf "a%d(%d)" pid d
  | `Read -> Printf.sprintf "r%d" pid
  | `Read_fast -> Printf.sprintf "f%d" pid

let gen_op =
  QCheck.Gen.(
    frequency
      [ (4, return `Inc);
        (2, map (fun d -> `Add d) (int_bound 24));
        (2, return `Read);
        (3, return `Read_fast) ])

let gen_seq =
  QCheck.Gen.(list_size (int_range 1 60) (pair (int_bound (n - 1)) gen_op))

let arb_seq =
  QCheck.make
    ~print:(fun seq -> String.concat " " (List.map op_to_string seq))
    gen_seq

let apply_direct ~increment ~add ~read ~read_fast obj seq =
  List.filter_map
    (fun (pid, op) ->
      match op with
      | `Inc ->
        increment obj ~pid;
        None
      | `Add d ->
        add obj ~pid d;
        None
      | `Read -> Some (read obj ~pid)
      | `Read_fast -> Some (read_fast obj ~pid))
    seq

(* Fiber 0 of a fresh n-process simulator execution applies the whole
   interleaving; the ~pid each op carries selects the object-level
   process (the test_backend_diff idiom). *)
let apply_in_sim seq =
  let exec = Sim.Exec.create ~n () in
  let obj = SK.create (Sim_backend.ctx exec) ~n ~k () in
  let reads = ref [] in
  let programs =
    Array.init n (fun i _fiber ->
        if i = 0 then
          List.iter
            (fun (pid, op) ->
              match op with
              | `Inc -> SK.increment obj ~pid
              | `Add d -> SK.add obj ~pid d
              | `Read -> reads := SK.read obj ~pid :: !reads
              | `Read_fast -> reads := SK.read_fast obj ~pid :: !reads)
            seq)
  in
  let outcome = Sim.Exec.run exec ~programs ~policy:Sim.Schedule.Round_robin () in
  Alcotest.(check bool) "sim run finished" true
    (Array.for_all Fun.id outcome.completed);
  List.rev !reads

let envelope_ok seq reads =
  let exact = ref 0 and rest = ref reads and ok = ref true in
  List.iter
    (fun (_pid, op) ->
      match op with
      | `Inc -> incr exact
      | `Add d -> exact := !exact + d
      | `Read | `Read_fast ->
        (match !rest with
         | r :: tl ->
           rest := tl;
           if not (Zmath.within_k ~k ~exact:!exact r) then ok := false
         | [] -> ok := false))
    seq;
  !ok && !rest = []

let prop_cross_backend =
  QCheck.Test.make ~count:60
    ~name:"inc/add/read/read_fast: backends agree, reads within envelope"
    arb_seq
    (fun seq ->
      let atomic = AK.create (Backend.Atomic_backend.ctx ()) ~n ~k () in
      let a_reads =
        apply_direct ~increment:AK.increment ~add:AK.add ~read:AK.read
          ~read_fast:AK.read_fast atomic seq
      in
      let chaos_ctx =
        Chaos_atomic.ctx ~rate:2 ~seed:(List.length seq) ~n
          (Backend.Atomic_backend.ctx ())
      in
      let chaotic = CK.create chaos_ctx ~n ~k () in
      let c_reads =
        apply_direct ~increment:CK.increment ~add:CK.add ~read:CK.read
          ~read_fast:CK.read_fast chaotic seq
      in
      let s_reads = apply_in_sim seq in
      a_reads = c_reads && a_reads = s_reads && envelope_ok seq a_reads)

(* ------------------------------------------------------------------ *)
(* Sim step accounting                                                 *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_costs_one_step () =
  let exec = Sim.Exec.create ~n:1 () in
  let c = Sim_backend.ctx exec in
  let counter = SK.create c ~n:1 ~k:2 () in
  let hit_steps = ref (-1) and miss_value = ref (-1) and hit_value = ref (-1) in
  let programs =
    [| (fun _fiber ->
         for _ = 1 to 10 do
           SK.increment counter ~pid:0
         done;
         miss_value := SK.read_fast counter ~pid:0;
         let before = Sim_backend.steps c ~pid:0 in
         hit_value := SK.read_fast counter ~pid:0;
         hit_steps := Sim_backend.steps c ~pid:0 - before) |]
  in
  ignore (Sim.Exec.run exec ~programs ~policy:Sim.Schedule.Round_robin ());
  check Alcotest.int "cache-hit read_fast charges exactly 1 step" 1 !hit_steps;
  check Alcotest.int "hit serves the cached value" !miss_value !hit_value;
  check Alcotest.int "one hit counted" 1 (SK.fast_hits counter ~pid:0);
  check Alcotest.int "one miss counted" 1 (SK.fast_misses counter ~pid:0)

(* [add] must pin the local counter to each crossed boundary exactly as
   the unit increments would, so the charged primitive sequence — and
   with it the Theorem III.9 amortized accounting — is identical. *)
let test_add_step_equivalence () =
  let total = 443 in
  let run_variant f =
    let exec = Sim.Exec.create ~n:1 () in
    let c = Sim_backend.ctx exec in
    let counter = SK.create c ~n:1 ~k:2 () in
    let value = ref (-1) in
    let programs =
      [| (fun _fiber ->
           f counter;
           value := SK.read counter ~pid:0) |]
    in
    ignore (Sim.Exec.run exec ~programs ~policy:Sim.Schedule.Round_robin ());
    (Sim_backend.steps c ~pid:0, !value)
  in
  let unit_steps, unit_value =
    run_variant (fun counter ->
        for _ = 1 to total do
          SK.increment counter ~pid:0
        done)
  in
  let doubling_steps, doubling_value =
    run_variant (fun counter ->
        (* Growing batches with a ragged tail. *)
        let left = ref total and b = ref 1 in
        while !left > 0 do
          let amount = min !left !b in
          SK.add counter ~pid:0 amount;
          left := !left - amount;
          b := !b * 2
        done)
  in
  let single_steps, single_value =
    run_variant (fun counter -> SK.add counter ~pid:0 total)
  in
  check Alcotest.int "doubling batches: same charged steps" unit_steps
    doubling_steps;
  check Alcotest.int "single bulk add: same charged steps" unit_steps
    single_steps;
  check Alcotest.int "doubling batches: same read" unit_value doubling_value;
  check Alcotest.int "single bulk add: same read" unit_value single_value;
  (* The shared constant-amortized bound, stated explicitly. *)
  Alcotest.(check bool) "amortized steps per increment stay O(1)" true
    (unit_steps <= 8 * total)

(* ------------------------------------------------------------------ *)
(* Zero allocation on the atomic backend                               *)
(* ------------------------------------------------------------------ *)

(* [Gc.minor_words] itself boxes its float result, so allow a small
   slack; any per-operation allocation over [ops] iterations would blow
   far past it. *)
let assert_no_alloc label ~ops f =
  let before = Gc.minor_words () in
  for i = 0 to ops - 1 do
    f i
  done;
  let after = Gc.minor_words () in
  let delta = after -. before in
  if delta > 256.0 then
    Alcotest.failf "%s allocated %.0f minor words over %d ops" label delta ops

let test_read_fast_hit_no_alloc () =
  let counter = Mcore.Mc_kcounter.create ~n:2 ~k:2 () in
  for _ = 1 to 10_000 do
    Mcore.Mc_kcounter.increment counter ~pid:0
  done;
  (* Populate pid 1's cache, then measure a pure-hit window (pid 0 is
     quiescent, so the watermark cannot move). *)
  ignore (Mcore.Mc_kcounter.read_fast counter ~pid:1);
  let hits_before = Mcore.Mc_kcounter.fast_hits counter ~pid:1 in
  assert_no_alloc "read_fast hit" ~ops:100_000 (fun _ ->
      ignore (Mcore.Mc_kcounter.read_fast counter ~pid:1));
  check Alcotest.int "window was all cache hits" 100_000
    (Mcore.Mc_kcounter.fast_hits counter ~pid:1 - hits_before)

let test_add_no_alloc () =
  let counter = Mcore.Mc_kcounter.create ~n:2 ~k:2 () in
  Mcore.Mc_kcounter.add counter ~pid:0 10_000;
  assert_no_alloc "bulk add" ~ops:100_000 (fun _ ->
      Mcore.Mc_kcounter.add counter ~pid:0 3)

(* The flattened (index-arithmetic) tree read: the loop and its
   prefetch hints must stay allocation-free, or the layout win drowns
   in GC traffic. Full-depth walk (m = 2^20, 21 levels). *)
let test_tree_read_no_alloc () =
  let tree = AT.create (Backend.Atomic_backend.ctx ()) ~m:(1 lsl 20) () in
  AT.write tree ~pid:0 123_456;
  assert_no_alloc "flattened tree read" ~ops:100_000 (fun _ ->
      ignore (Sys.opaque_identity (AT.read tree ~pid:0)));
  check Alcotest.int "window read the written maximum" 123_456
    (AT.read tree ~pid:0)

(* The strided 4-accumulator collect scan, including the n mod 4 tail. *)
let test_collect_read_no_alloc () =
  let c = AColl.create (Backend.Atomic_backend.ctx ()) ~n:7 () in
  for pid = 0 to 6 do
    for _ = 1 to pid + 1 do
      AColl.increment c ~pid
    done
  done;
  assert_no_alloc "strided collect read" ~ops:100_000 (fun _ ->
      ignore (Sys.opaque_identity (AColl.read c ~pid:0)));
  check Alcotest.int "strided sum is exact" 28 (AColl.read c ~pid:0)

(* ------------------------------------------------------------------ *)
(* kmaxreg validated cache                                             *)
(* ------------------------------------------------------------------ *)

let test_kmaxreg_read_fast_agrees () =
  let mr =
    AM.create (Backend.Atomic_backend.ctx ()) ~n:2 ~m:(1 lsl 20) ~k:2 ()
  in
  let exact = ref 0 in
  List.iter
    (fun v ->
      AM.write mr ~pid:0 v;
      exact := max !exact v;
      let plain = AM.read mr ~pid:1 in
      let fast = AM.read_fast mr ~pid:1 in
      let fast2 = AM.read_fast mr ~pid:1 in
      check Alcotest.int
        (Printf.sprintf "read_fast = read after write %d" v)
        plain fast;
      check Alcotest.int "repeated read_fast stable" fast fast2;
      Alcotest.(check bool)
        (Printf.sprintf "served %d within [exact, k*exact] of %d" fast !exact)
        true
        (fast >= !exact && fast <= k * !exact))
    [ 1; 5; 3; 100; 99; 1000; 4096; 4097; 65535; 2; 70000 ];
  Alcotest.(check bool) "cache hits occurred" true (AM.fast_hits mr ~pid:1 > 0);
  Alcotest.(check bool) "misses counted too" true (AM.fast_misses mr ~pid:1 > 0)

let test_kmaxreg_custom_inner_fallback () =
  (* With a caller-supplied inner register the watermark is opaque, so
     read_fast must degrade to the plain read (never crash, never
     cache). *)
  let ctx = Backend.Atomic_backend.ctx () in
  let tree = AT.create ctx ~m:24 () in
  let mr = AM.create ctx ~inner:(AT.handle tree) ~m:(1 lsl 20) ~k:2 () in
  AM.write mr ~pid:0 77;
  check Alcotest.int "fallback read_fast = read" (AM.read mr ~pid:0)
    (AM.read_fast mr ~pid:0);
  check Alcotest.int "no hits on the fallback path" 0 (AM.fast_hits mr ~pid:0)

let test_mc_kmaxreg_wrapper () =
  let mr = Mcore.Mc_kmaxreg.create ~m:(1 lsl 20) ~k:2 () in
  check Alcotest.int "empty register reads 0 through the cache" 0
    (Mcore.Mc_kmaxreg.read_fast mr);
  Mcore.Mc_kmaxreg.write mr 123;
  check Alcotest.int "wrapper read_fast = read" (Mcore.Mc_kmaxreg.read mr)
    (Mcore.Mc_kmaxreg.read_fast mr);
  Alcotest.(check bool) "wrapper exposes hit counters" true
    (Mcore.Mc_kmaxreg.fast_hits mr + Mcore.Mc_kmaxreg.fast_misses mr >= 2)

(* ------------------------------------------------------------------ *)
(* add argument validation                                             *)
(* ------------------------------------------------------------------ *)

let test_add_rejects_negative () =
  let counter = AK.create (Backend.Atomic_backend.ctx ()) ~n:1 ~k:2 () in
  Alcotest.check_raises "negative amount"
    (Invalid_argument "Kcounter_algo.add: negative amount") (fun () ->
      AK.add counter ~pid:0 (-1));
  AK.add counter ~pid:0 0;
  check Alcotest.int "add 0 is a no-op" 0 (AK.read counter ~pid:0)

let () =
  Alcotest.run "fastpath"
    [ ("differential",
       [ QCheck_alcotest.to_alcotest prop_cross_backend ]);
      ("sim steps",
       [ ("cache hit costs one step", `Quick, test_cache_hit_costs_one_step);
         ("add is step-equivalent to unit incs", `Quick,
          test_add_step_equivalence) ]);
      ("allocation",
       [ ("read_fast hit allocates nothing", `Quick,
          test_read_fast_hit_no_alloc);
         ("bulk add allocates nothing", `Quick, test_add_no_alloc);
         ("flattened tree read allocates nothing", `Quick,
          test_tree_read_no_alloc);
         ("strided collect read allocates nothing", `Quick,
          test_collect_read_no_alloc) ]);
      ("kmaxreg",
       [ ("read_fast agrees with read", `Quick, test_kmaxreg_read_fast_agrees);
         ("custom inner degrades to plain read", `Quick,
          test_kmaxreg_custom_inner_fallback);
         ("mcore wrapper", `Quick, test_mc_kmaxreg_wrapper) ]);
      ("validation",
       [ ("add rejects negative amounts", `Quick, test_add_rejects_negative) ])
    ]
