(* The service's name plumbing: the seeded FNV-1a hash (pinned
   vectors — shard and ring assignment must survive compiler upgrades
   byte-for-byte), the dense-id object table the request hot path
   indexes into, the per-connection intern cache, and the placement
   spread properties the finalized hash was added to guarantee. *)

let check = Alcotest.check

module O = Service.Objects
module F = Service.Fnv
module P = Service.Placement

(* ------------------------------------------------------------------ *)
(* FNV-1a pinned vectors                                               *)
(* ------------------------------------------------------------------ *)

(* Measured once from the implementation and pinned: placement and
   sharding are derived independently by server, client and loadgen,
   so the hash is a wire-protocol-grade invariant — any drift (a new
   OCaml release changing [Hashtbl.hash] was the original offender)
   silently reshuffles every deployed ring. *)
let test_fnv_pinned_vectors () =
  List.iter
    (fun (seed, s, expected) ->
      check Alcotest.int
        (Printf.sprintf "fnv ~seed:%d %S" seed s)
        expected (F.hash ~seed s))
    [ (0, "", 0xb673edc29f44372);
      (0, "a", 0x1345461c5f8fbb1b);
      (0, "c0", 0x34f00c4a3c126e4a);
      (0, "kmaxreg", 0x10f90cc1324801de);
      (0, "vnode-0#0", 0x18093ac421b007b8);
      (0x52494E47, "vnode-0#0", 0x13fab353bb4854c7);
      (0x52494E47, "vnode-2#63", 0x96a713e243d3acd);
      (1, "c0", 0x12d04898a1177e3a);
      (0, "tenant-0042-counter-000000001", 0x26b802fa5a6c22ca);
      (0, "tenant-0042-counter-000000002", 0x3c591c4ea4ac9eb2) ]

let test_fnv_properties () =
  (* Nonnegative (directly usable as a mod/land index). *)
  List.iter
    (fun s -> Alcotest.(check bool) "nonnegative" true (F.hash s >= 0))
    [ ""; "x"; String.make 300 'z' ];
  (* Every byte participates — names sharing a long prefix (the shape
     Hashtbl.hash's prefix sampling collided wholesale) must differ. *)
  let prefix = String.make 64 'p' in
  Alcotest.(check bool) "suffix-only difference changes the hash" true
    (F.hash (prefix ^ "1") <> F.hash (prefix ^ "2"));
  (* Seeds select independent streams. *)
  Alcotest.(check bool) "seed changes the stream" true
    (F.hash ~seed:1 "c0" <> F.hash "c0")

(* The avalanche finalizer is what keeps both ends of the word usable:
   low bits index shards, high bits order the placement ring. Raw
   FNV's high bits barely move for short common-prefix strings (the
   vnode labels!), which measurably skewed the ring. Assert both ends
   spread over a generated namespace. *)
let test_fnv_bit_spread () =
  let names = List.init 512 (Printf.sprintf "obj-%04d") in
  let low = Array.make 8 0 and high = Array.make 8 0 in
  List.iter
    (fun s ->
      let h = F.hash s in
      low.(h land 7) <- low.(h land 7) + 1;
      high.(h lsr 59) <- high.(h lsr 59) + 1)
    names;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "low octant %d populated sanely" i)
        true
        (c > 16 && c < 256))
    low;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "high octant %d populated sanely" i)
        true
        (c > 16 && c < 256))
    high

(* ------------------------------------------------------------------ *)
(* Dense-id table                                                      *)
(* ------------------------------------------------------------------ *)

let build_table ?(shards = 2) specs =
  let metrics = Service.Metrics.create ~shards ~io_domains:1 () in
  O.build ~metrics ~shards specs

let test_table_dense_ids () =
  let specs = O.default_specs ~counters:3 ~k:2 in
  let t = build_table specs in
  check Alcotest.int "count" (List.length specs) (O.count t);
  (* Dense ids are registration order, and [get] inverts [find_id]. *)
  List.iteri
    (fun i (s : O.spec) ->
      let id = O.find_id t s.O.name in
      check Alcotest.int (s.O.name ^ " dense id") i id;
      check Alcotest.string "get round-trips" s.O.name
        (O.spec (O.get t id)).O.name;
      check Alcotest.int "id accessor agrees" i (O.id (O.get t id)))
    specs;
  check Alcotest.int "unknown name" (-1) (O.find_id t "nope");
  check Alcotest.int "empty name" (-1) (O.find_id t "");
  (* [iter] walks registration order (what snapshot/gossip rely on for
     stable, list-spine-free sweeps). *)
  let seen = ref [] in
  O.iter (fun o -> seen := O.id o :: !seen) t;
  check
    Alcotest.(list int)
    "iter order" (List.init (O.count t) Fun.id) (List.rev !seen)

let test_intern_cache () =
  let specs = O.default_specs ~counters:2 ~k:2 in
  let t = build_table specs in
  let cache = O.Intern.create () in
  check Alcotest.int "cold cache misses" (-1) (O.Intern.find_cached cache "c0");
  check Alcotest.int "empty name never hits" (-1)
    (O.Intern.find_cached cache "");
  let id = O.find_id t "c0" in
  O.Intern.store cache "c0" id;
  check Alcotest.int "hit after store" id (O.Intern.find_cached cache "c0");
  (* A name mapping to the same slot overwrites (direct-mapped): the
     old name reverts to a miss, never to a wrong id. *)
  let slot name = F.hash name land (O.Intern.slots - 1) in
  let c0_slot = slot "c0" in
  let collider =
    let rec go i =
      let cand = Printf.sprintf "x%d" i in
      if slot cand = c0_slot then cand else go (i + 1)
    in
    go 0
  in
  O.Intern.store cache collider 7;
  check Alcotest.int "collider took the slot" 7
    (O.Intern.find_cached cache collider);
  check Alcotest.int "evicted name misses cleanly" (-1)
    (O.Intern.find_cached cache "c0")

(* [Gc.minor_words] itself boxes its float result; any per-lookup
   allocation over the window would blow far past the slack. *)
let assert_no_alloc label ~ops f =
  let before = Gc.minor_words () in
  for i = 0 to ops - 1 do
    f i
  done;
  let after = Gc.minor_words () in
  let delta = after -. before in
  if delta > 256.0 then
    Alcotest.failf "%s allocated %.0f minor words over %d ops" label delta ops

(* The dense-id service lookup is on the per-request hot path: both
   the intern hit and the table fallback (hash find returning an
   immediate id, or a constant [Not_found]) must allocate nothing. *)
let test_dense_lookup_no_alloc () =
  let t = build_table (O.default_specs ~counters:2 ~k:2) in
  let cache = O.Intern.create () in
  O.Intern.store cache "c0" (O.find_id t "c0");
  assert_no_alloc "intern hit" ~ops:100_000 (fun _ ->
      ignore (Sys.opaque_identity (O.Intern.find_cached cache "c0")));
  assert_no_alloc "table find_id hit" ~ops:100_000 (fun _ ->
      ignore (Sys.opaque_identity (O.find_id t "kmaxreg")));
  assert_no_alloc "table find_id miss" ~ops:100_000 (fun _ ->
      ignore (Sys.opaque_identity (O.find_id t "absent")));
  assert_no_alloc "fnv hash" ~ops:100_000 (fun _ ->
      ignore (Sys.opaque_identity (F.hash "tenant-0042-counter-000000001")))

(* ------------------------------------------------------------------ *)
(* Placement spread                                                    *)
(* ------------------------------------------------------------------ *)

(* The regression the finalizer fixed: under raw FNV one node owned
   half the ring and some nodes hosted none of the default objects.
   Any future hash change that reintroduces clumping fails here. *)
let test_placement_spread () =
  List.iter
    (fun nodes ->
      let p = P.create ~nodes ~replicas:1 in
      let owned = Array.make nodes 0 in
      for i = 0 to 9_999 do
        let o = P.primary p (Printf.sprintf "obj-%d" i) in
        owned.(o) <- owned.(o) + 1
      done;
      let ideal = 10_000 / nodes in
      Array.iteri
        (fun n c ->
          Alcotest.(check bool)
            (Printf.sprintf "node %d/%d owns a fair share" n nodes)
            true
            (c > ideal / 2 && c < ideal * 2))
        owned)
    [ 2; 3; 5 ];
  (* Every node of a 3-node ring hosts at least one default object —
     the property the loadgen failover path leans on. *)
  let p = P.create ~nodes:3 ~replicas:1 in
  let specs = O.default_specs ~counters:4 ~k:2 in
  let hosted = Array.make 3 false in
  List.iter (fun (s : O.spec) -> hosted.(P.primary p s.O.name) <- true) specs;
  Array.iteri
    (fun n h ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d hosts a default object" n)
        true h)
    hosted

let suite =
  [ ("fnv pinned vectors", `Quick, test_fnv_pinned_vectors);
    ("fnv properties", `Quick, test_fnv_properties);
    ("fnv bit spread", `Quick, test_fnv_bit_spread);
    ("table dense ids", `Quick, test_table_dense_ids);
    ("intern cache", `Quick, test_intern_cache);
    ("dense lookup allocates nothing", `Quick, test_dense_lookup_no_alloc);
    ("placement spread", `Quick, test_placement_spread) ]

let () = Alcotest.run "service_objects" [ ("service_objects", suite) ]
