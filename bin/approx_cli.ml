(* Command-line driver for the simulated objects: run workloads, dump
   traces, check linearizability, and run the lower-bound experiments
   without writing any OCaml.

   Examples:
     approx_cli counter --impl k --n 8 --k 3 --ops 1000 --read-fraction 0.2
     approx_cli maxreg --impl k --m 65536 --writes 50 --trace
     approx_cli lincheck --n 3 --k 2 --ops 5 --seed 11
     approx_cli awareness --n 64 --k 2
     approx_cli perturb --object maxreg --m 1048576 --k 2
*)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument definitions                                         *)
(* ------------------------------------------------------------------ *)

let n_arg =
  Arg.(value & opt int 4 & info [ "n"; "procs" ] ~docv:"N" ~doc:"Number of processes.")

let k_arg =
  Arg.(value & opt int 2 & info [ "k"; "acc" ] ~docv:"K"
         ~doc:"Accuracy parameter of the k-multiplicative objects.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Deterministic seed for workload and schedule.")

let policy_arg =
  let policy = Arg.enum [ ("round-robin", `Round_robin); ("random", `Random) ] in
  Arg.(value & opt policy `Random
       & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Scheduling policy: $(b,round-robin) or $(b,random).")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Dump the full execution trace.")

let dump_events_arg =
  Arg.(value & opt (some string) None
       & info [ "dump-events" ] ~docv:"FILE"
           ~doc:"Export the event trace to $(docv) (.csv or .json by \
                 extension).")

let dump_ops_arg =
  Arg.(value & opt (some string) None
       & info [ "dump-ops" ] ~docv:"FILE"
           ~doc:"Export per-operation metrics to $(docv) as CSV.")

let export_dumps exec ~dump_events ~dump_ops =
  let mem = Sim.Exec.memory exec in
  let trace = Sim.Exec.trace exec in
  (match dump_events with
   | None -> ()
   | Some path ->
     let emit =
       if Filename.check_suffix path ".json" then Sim.Export.events_json mem
       else Sim.Export.events_csv mem
     in
     Sim.Export.write_file path (emit trace);
     Printf.printf "events written to %s\n" path);
  match dump_ops with
  | None -> ()
  | Some path ->
    Sim.Export.write_file path (Sim.Export.ops_csv trace);
    Printf.printf "operation metrics written to %s\n" path

let make_policy policy seed =
  match policy with
  | `Round_robin -> Sim.Schedule.Round_robin
  | `Random -> Sim.Schedule.Random seed

let print_metrics trace =
  Printf.printf "operations:\n";
  List.iter
    (fun (name, count, worst, mean) ->
      Printf.printf "  %-8s count=%-7d worst-steps=%-5d mean-steps=%.2f\n" name
        count worst mean)
    (Sim.Metrics.by_name trace);
  Printf.printf "total steps: %d, amortized steps/op: %.3f\n"
    (Sim.Trace.steps trace)
    (Sim.Metrics.amortized trace)

(* ------------------------------------------------------------------ *)
(* counter subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let counter_impl_arg =
  let impl =
    Arg.enum
      [ ("k", `K); ("collect", `Collect); ("tree", `Tree);
        ("snapshot", `Snapshot); ("faa", `Faa) ]
  in
  Arg.(value & opt impl `K
       & info [ "impl" ] ~docv:"IMPL"
           ~doc:"Counter implementation: $(b,k) (Algorithm 1), \
                 $(b,collect), $(b,tree), $(b,snapshot) or $(b,faa).")

let make_counter impl exec ~n ~k =
  match impl with
  | `K -> Approx.Kcounter.handle (Approx.Kcounter.create exec ~n ~k ())
  | `Collect ->
    Counters.Collect_counter.handle (Counters.Collect_counter.create exec ~n ())
  | `Tree -> Counters.Tree_counter.handle (Counters.Tree_counter.create exec ~n ())
  | `Snapshot ->
    Counters.Snapshot_counter.handle
      (Counters.Snapshot_counter.create exec ~n ())
  | `Faa -> Counters.Faa_counter.handle (Counters.Faa_counter.create exec ())

let run_counter impl n k ops read_fraction seed policy trace dump_events
    dump_ops =
  let exec = Sim.Exec.create ~n () in
  let counter = make_counter impl exec ~n ~k in
  let script =
    Workload.Script.counter_mix ~seed ~n ~ops_per_process:ops ~read_fraction
  in
  let reads = ref [] in
  let programs =
    Workload.Script.counter_programs
      ~on_read:(fun ~pid result -> reads := (pid, result) :: !reads)
      counter script
  in
  let outcome =
    Sim.Exec.run exec ~programs ~policy:(make_policy policy seed) ()
  in
  Printf.printf "%s: n=%d ops/process=%d -> %d reads, %d steps\n"
    counter.Obj_intf.c_label n ops
    (List.length !reads)
    outcome.steps_total;
  (match List.rev !reads with
   | [] -> ()
   | (pid, first) :: _ ->
     Printf.printf "first read: p%d -> %d; last read: %s\n" pid first
       (match !reads with
        | (pid, last) :: _ -> Printf.sprintf "p%d -> %d" pid last
        | [] -> "-"));
  print_metrics (Sim.Exec.trace exec);
  if trace then Format.printf "%a" Sim.Trace.pp (Sim.Exec.trace exec);
  export_dumps exec ~dump_events ~dump_ops;
  0

let counter_cmd =
  let ops_arg =
    Arg.(value & opt int 1000
         & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per process.")
  in
  let rf_arg =
    Arg.(value & opt float 0.2
         & info [ "read-fraction" ] ~docv:"F"
             ~doc:"Fraction of operations that are reads.")
  in
  Cmd.v
    (Cmd.info "counter" ~doc:"Run a counter workload in the simulator")
    Term.(const run_counter $ counter_impl_arg $ n_arg $ k_arg $ ops_arg
          $ rf_arg $ seed_arg $ policy_arg $ trace_arg $ dump_events_arg
          $ dump_ops_arg)

(* ------------------------------------------------------------------ *)
(* maxreg subcommand                                                   *)
(* ------------------------------------------------------------------ *)

let maxreg_impl_arg =
  let impl =
    Arg.enum
      [ ("k", `K); ("tree", `Tree); ("linear", `Linear);
        ("unbounded", `Unbounded); ("k-unbounded", `Kunbounded) ]
  in
  Arg.(value & opt impl `K
       & info [ "impl" ] ~docv:"IMPL"
           ~doc:"Max-register implementation: $(b,k) (Algorithm 2), \
                 $(b,tree), $(b,linear), $(b,unbounded) or \
                 $(b,k-unbounded).")

let make_maxreg impl exec ~n ~m ~k =
  match impl with
  | `K -> Approx.Kmaxreg.handle (Approx.Kmaxreg.create exec ~n ~m ~k ())
  | `Tree -> Maxreg.Tree_maxreg.handle (Maxreg.Tree_maxreg.create exec ~m ())
  | `Linear -> Maxreg.Linear_maxreg.handle (Maxreg.Linear_maxreg.create exec ~n ())
  | `Unbounded ->
    Maxreg.Unbounded_maxreg.handle (Maxreg.Unbounded_maxreg.create exec ())
  | `Kunbounded ->
    Approx.Kmaxreg_unbounded.handle (Approx.Kmaxreg_unbounded.create exec ~k ())

let run_maxreg impl n m k writes seed policy trace dump_events dump_ops =
  let exec = Sim.Exec.create ~n () in
  let mr = make_maxreg impl exec ~n ~m ~k in
  let script =
    Workload.Script.writes_then_read ~seed ~n ~writes_per_process:writes
      ~max_value:m
  in
  let reads = ref [] in
  let programs =
    Workload.Script.maxreg_programs
      ~on_read:(fun ~pid result -> reads := (pid, result) :: !reads)
      mr script
  in
  let outcome =
    Sim.Exec.run exec ~programs ~policy:(make_policy policy seed) ()
  in
  Printf.printf "%s: n=%d m=%d -> %d steps\n" mr.Obj_intf.mr_label n m
    outcome.steps_total;
  List.iter
    (fun (pid, x) -> Printf.printf "read by p%d -> %d\n" pid x)
    (List.rev !reads);
  print_metrics (Sim.Exec.trace exec);
  if trace then Format.printf "%a" Sim.Trace.pp (Sim.Exec.trace exec);
  export_dumps exec ~dump_events ~dump_ops;
  0

let maxreg_cmd =
  let m_arg =
    Arg.(value & opt int 65536
         & info [ "m"; "bound" ] ~docv:"M" ~doc:"Value bound (bounded registers).")
  in
  let writes_arg =
    Arg.(value & opt int 20
         & info [ "writes" ] ~docv:"W" ~doc:"Writes per process.")
  in
  Cmd.v
    (Cmd.info "maxreg" ~doc:"Run a max-register workload in the simulator")
    Term.(const run_maxreg $ maxreg_impl_arg $ n_arg $ m_arg $ k_arg
          $ writes_arg $ seed_arg $ policy_arg $ trace_arg $ dump_events_arg
          $ dump_ops_arg)

(* ------------------------------------------------------------------ *)
(* lincheck subcommand                                                 *)
(* ------------------------------------------------------------------ *)

let run_lincheck n k ops seed =
  let exec = Sim.Exec.create ~n () in
  let counter = Approx.Kcounter.create exec ~n ~k () in
  let script =
    Workload.Script.counter_mix ~seed ~n ~ops_per_process:ops
      ~read_fraction:0.5
  in
  let programs =
    Workload.Script.counter_programs (Approx.Kcounter.handle counter) script
  in
  ignore (Sim.Exec.run exec ~programs ~policy:(Sim.Schedule.Random seed) ());
  let ops_arr = Lincheck.History.of_trace (Sim.Exec.trace exec) in
  Array.iter
    (fun op -> Format.printf "%a@." Lincheck.History.pp_op op)
    ops_arr;
  print_newline ();
  print_string (Lincheck.Render.timeline (Sim.Exec.trace exec));
  match Lincheck.Checker.check (Lincheck.Spec.k_counter ~k) ops_arr with
  | Lincheck.Checker.Linearizable witness ->
    Printf.printf "linearizable (witness: %s)\n"
      (String.concat " " (List.map string_of_int witness));
    0
  | Lincheck.Checker.Not_linearizable ->
    Printf.printf "NOT LINEARIZABLE\n";
    1

let lincheck_cmd =
  let ops_arg =
    Arg.(value & opt int 4
         & info [ "ops" ] ~docv:"OPS"
             ~doc:"Operations per process (keep small; the check is \
                   exponential).")
  in
  Cmd.v
    (Cmd.info "lincheck"
       ~doc:"Run Algorithm 1 under a random schedule and check \
             linearizability against the k-counter specification")
    Term.(const run_lincheck $ n_arg $ k_arg $ ops_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* awareness subcommand                                                *)
(* ------------------------------------------------------------------ *)

let run_awareness n k seed =
  let result =
    Lowerbound.Awareness_exp.run
      ~make:(fun exec ~n ->
        Approx.Kcounter.handle (Approx.Kcounter.create exec ~n ~k ()))
      ~n ~k
      ~policy:(Sim.Schedule.Random seed)
  in
  Printf.printf
    "n=%d k=%d: %d events (Thm III.11 bound ~ %.0f), top-half awareness %d \
     (Cor III.10.1 bound %.1f)\n"
    n k result.total_events result.events_bound result.top_half_min
    result.awareness_bound;
  0

let awareness_cmd =
  Cmd.v
    (Cmd.info "awareness"
       ~doc:"Run the inc-then-read workload with awareness tracking \
             (Section III-D)")
    Term.(const run_awareness $ n_arg $ k_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* perturb subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let run_perturb obj m k =
  let rounds =
    match obj with
    | `Maxreg ->
      Lowerbound.Perturb.perturb_maxreg
        ~make:(fun exec ~n ->
          Approx.Kmaxreg.handle (Approx.Kmaxreg.create exec ~n ~m ~k ()))
        ~m ~k
    | `Counter ->
      Lowerbound.Perturb.perturb_counter
        ~make:(fun exec ~n ->
          Approx.Kcounter.handle (Approx.Kcounter.create exec ~n ~k ()))
        ~m ~k
  in
  Printf.printf "%-6s %-14s %-14s %-8s %s\n" "round" "input" "response"
    "objects" "steps";
  List.iter
    (fun r ->
      Printf.printf "%-6d %-14d %-14d %-8d %d\n" r.Lowerbound.Perturb.index
        r.Lowerbound.Perturb.input r.Lowerbound.Perturb.response
        r.Lowerbound.Perturb.distinct_objects r.Lowerbound.Perturb.read_steps)
    rounds;
  0

let perturb_cmd =
  let obj_arg =
    let obj = Arg.enum [ ("maxreg", `Maxreg); ("counter", `Counter) ] in
    Arg.(value & opt obj `Maxreg
         & info [ "object" ] ~docv:"OBJ"
             ~doc:"Which object to perturb: $(b,maxreg) or $(b,counter).")
  in
  let m_arg =
    Arg.(value & opt int (1 lsl 20)
         & info [ "m"; "bound" ] ~docv:"M" ~doc:"Bound for the perturbation budget.")
  in
  Cmd.v
    (Cmd.info "perturb"
       ~doc:"Run the Section V perturbation adversary against Algorithm 1/2")
    Term.(const run_perturb $ obj_arg $ m_arg $ k_arg)

(* ------------------------------------------------------------------ *)
(* explore subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let run_explore n k incs limit =
  let script =
    Array.init n (fun _ ->
        List.init incs (fun _ -> Workload.Script.Inc) @ [ Workload.Script.Read ])
  in
  let build () =
    let exec = Sim.Exec.create ~n () in
    let counter = Approx.Kcounter.create exec ~n ~k () in
    (exec,
     Workload.Script.counter_programs (Approx.Kcounter.handle counter) script)
  in
  let stats =
    Lincheck.Explore.exhaustive ~build ~spec:(Lincheck.Spec.k_counter ~k)
      ~limit ()
  in
  Printf.printf
    "explored %d complete executions (%d replays, depth <= %d)%s\n"
    stats.Lincheck.Explore.executions stats.Lincheck.Explore.replays
    stats.Lincheck.Explore.max_depth
    (if stats.Lincheck.Explore.truncated then " [truncated]" else "");
  if stats.Lincheck.Explore.violations = 0 then begin
    Printf.printf "all linearizable against the %d-counter specification\n" k;
    0
  end
  else begin
    Printf.printf "%d VIOLATIONS; first witness schedule: %s\n"
      stats.Lincheck.Explore.violations
      (match stats.Lincheck.Explore.first_violation with
       | None -> "-"
       | Some s ->
         String.concat " " (Array.to_list (Array.map string_of_int s)));
    1
  end

let explore_cmd =
  let incs_arg =
    Arg.(value & opt int 2
         & info [ "incs" ] ~docv:"I"
             ~doc:"Increments per process before its final read (keep \
                   small; exploration is exponential).")
  in
  let limit_arg =
    Arg.(value & opt int 200_000
         & info [ "limit" ] ~docv:"L" ~doc:"Maximum executions to explore.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Exhaustively enumerate every interleaving of a small \
             Algorithm 1 configuration and check linearizability")
    Term.(const run_explore $ n_arg $ k_arg $ incs_arg $ limit_arg)

(* ------------------------------------------------------------------ *)
(* backends subcommand                                                 *)
(* ------------------------------------------------------------------ *)

let run_backends seed =
  let rows = Backend_smoke.rows ~seed () in
  Printf.printf "functor smoke matrix: n=%d k=%d incs=%d\n" Backend_smoke.n
    Backend_smoke.k Backend_smoke.incs;
  List.iter
    (fun r ->
      Printf.printf
        "  %-14s counter=%-6d %-3s maxreg=%-6d %-3s pid0-steps=%d\n"
        r.Backend_smoke.backend r.Backend_smoke.counter_read
        (if r.Backend_smoke.counter_ok then "ok" else "BAD")
        r.Backend_smoke.maxreg_read
        (if r.Backend_smoke.maxreg_ok then "ok" else "BAD")
        r.Backend_smoke.steps)
    rows;
  if Backend_smoke.all_ok rows then begin
    print_endline "all backends within the k-multiplicative envelope";
    0
  end
  else begin
    print_endline "ENVELOPE VIOLATION in the backend matrix";
    1
  end

let backends_cmd =
  Cmd.v
    (Cmd.info "backends"
       ~doc:"Drive the functorized Algorithms 1 & 2 through every backend \
             instantiation (sim, chaos(sim), atomic, chaos(atomic)) and \
             check the accuracy envelopes")
    Term.(const run_backends $ seed_arg)

(* ------------------------------------------------------------------ *)
(* bench subcommand                                                    *)
(* ------------------------------------------------------------------ *)

let run_bench trials warmup ops domains out smoke check_floor =
  let cfg =
    if smoke then { Perf.Pipeline.smoke_config with out_path = out }
    else
      { Perf.Pipeline.default_config with
        trials;
        warmup_trials = warmup;
        ops_per_domain = ops;
        domains =
          (match domains with
           | [] -> Perf.Pipeline.default_config.domains
           | ds -> ds);
        (* Full runs put the scale-sweep server in its own process so
           the 10k-connection cells don't split one RLIMIT_NOFILE
           budget between server and loadgen. *)
        service_scale_server_exe = Some Sys.executable_name;
        out_path = out }
  in
  if cfg.trials < 1 || cfg.warmup_trials < 0 || cfg.ops_per_domain < 1
     || List.exists (fun d -> d < 1) cfg.domains
  then begin
    prerr_endline "bench: trials/ops/domains must be positive";
    2
  end
  else begin
    ignore (Perf.Pipeline.run cfg);
    match check_floor with
    | None -> 0
    | Some floor ->
      (* A dedicated full-size measurement: smoke-sized trials are
         spawn-dominated and not comparable to a committed record. *)
      let median = Perf.Pipeline.read_heavy_floor_probe () in
      if median >= floor then begin
        Printf.printf
          "floor check: kcounter read-heavy median %.6g >= %.6g ops/s\n"
          median floor;
        0
      end
      else begin
        Printf.eprintf
          "floor check FAILED: kcounter read-heavy median %.6g < %.6g ops/s\n"
          median floor;
        1
      end
  end

let bench_cmd =
  let trials_arg =
    Arg.(value & opt int 5
         & info [ "trials" ] ~docv:"T"
             ~doc:"Recorded trials per measurement (min/median/max are \
                   taken over these).")
  in
  let warmup_arg =
    Arg.(value & opt int 1
         & info [ "warmup" ] ~docv:"W"
             ~doc:"Discarded warmup trials per measurement.")
  in
  let ops_arg =
    Arg.(value & opt int 100_000
         & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per domain per trial.")
  in
  let domains_arg =
    Arg.(value & opt (list int) []
         & info [ "domains" ] ~docv:"D,D,..."
             ~doc:"Domain counts to sweep (default: 1,2 plus powers of \
                   two up to the recognized core count).")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_9.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Output JSON path.")
  in
  let smoke_arg =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Run the tiny smoke configuration (fast; for CI).")
  in
  let check_floor_arg =
    Arg.(value & opt (some float) None
         & info [ "check-floor" ] ~docv:"OPS_PER_SEC"
             ~doc:"After the run, fail (exit 1) unless the kcounter \
                   read-heavy domains=1 median is at least $(docv) — the \
                   CI regression guard against a committed BENCH record.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run the multicore benchmark pipeline and write a BENCH_*.json \
             performance record")
    Term.(const run_bench $ trials_arg $ warmup_arg $ ops_arg $ domains_arg
          $ out_arg $ smoke_arg $ check_floor_arg)

(* ------------------------------------------------------------------ *)
(* service subcommands: serve / loadgen / stats                        *)
(* ------------------------------------------------------------------ *)

let unix_arg =
  Arg.(value & opt string "/tmp/approx_service.sock"
       & info [ "unix" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path of the service.")

let tcp_arg =
  Arg.(value & opt (some int) None
       & info [ "tcp" ] ~docv:"PORT"
           ~doc:"Use TCP on 127.0.0.1:$(docv) instead of the Unix \
                 socket (0 picks a free port when serving).")

let addr_of ~unix ~tcp =
  match tcp with
  | Some port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
  | None -> Unix.ADDR_UNIX unix

let counters_arg =
  Arg.(value & opt int 4
       & info [ "counters" ] ~docv:"C"
           ~doc:"Number of hosted k-counters (named c0 .. c<C-1>).")

let poller_arg =
  let poller =
    Arg.enum
      [ ("auto", Service.Poller.Auto); ("epoll", Service.Poller.Epoll);
        ("select", Service.Poller.Select) ]
  in
  Arg.(value & opt poller Service.Poller.Auto
       & info [ "poller" ] ~docv:"BACKEND"
           ~doc:"Readiness backend: $(b,auto) (epoll where compiled in, \
                 select elsewhere), $(b,epoll) or $(b,select).")

(* An explicitly requested backend that is compiled out is a usage
   error (exit 2), same as any other impossible flag combination. *)
let check_poller which poller =
  if poller = Service.Poller.Epoll && not Service.Poller.epoll_available then begin
    Printf.eprintf
      "%s: --poller epoll requested but the epoll backend is not compiled \
       in on this platform\n"
      which;
    false
  end
  else true

(* --peers ID=ADDR[,ID=ADDR...] where ADDR is HOST:PORT (TCP) or a
   Unix-socket path. Node ids refer to the same 0-based numbering as
   --node-id. *)
let parse_peers s =
  let parse_one entry =
    match String.index_opt entry '=' with
    | None -> None
    | Some eq ->
      let id = String.sub entry 0 eq in
      let addr = String.sub entry (eq + 1) (String.length entry - eq - 1) in
      (match int_of_string_opt id with
       | None -> None
       | Some id when id < 0 -> None
       | Some id ->
         (match String.rindex_opt addr ':' with
          | Some colon
            when (match
                    int_of_string_opt
                      (String.sub addr (colon + 1)
                         (String.length addr - colon - 1))
                  with
                 | Some p -> p > 0
                 | None -> false) ->
            let host = String.sub addr 0 colon in
            let port =
              int_of_string
                (String.sub addr (colon + 1) (String.length addr - colon - 1))
            in
            Some (id, `Tcp (host, port))
          | _ -> if addr = "" then None else Some (id, `Unix addr)))
  in
  if s = "" then Some []
  else
    let entries = String.split_on_char ',' s in
    let parsed = List.map parse_one entries in
    if List.exists Option.is_none parsed then None
    else Some (List.map Option.get parsed)

(* --fsync never | interval-ms:N | every-n-records:N *)
let parse_fsync s =
  if s = "never" then Some Persist.Wal.Never
  else
    match String.index_opt s ':' with
    | None -> None
    | Some colon ->
      let key = String.sub s 0 colon in
      let v = String.sub s (colon + 1) (String.length s - colon - 1) in
      (match (key, int_of_string_opt v) with
       | "interval-ms", Some n when n >= 1 -> Some (Persist.Wal.Interval_ms n)
       | "every-n-records", Some n when n >= 1 -> Some (Persist.Wal.Every_n n)
       | _ -> None)

let run_serve shards io_domains queue_capacity max_batch max_pending max_conns
    poller unix tcp counters k duration node_id nodes replicas
    gossip_interval_ms k_staleness digest_interval_ticks gossip_wire_spec
    peers_spec data_dir fsync_spec snapshot_interval_ms =
  if shards < 1 || io_domains < 1 || counters < 1 || k < 2
     || queue_capacity < 1 || max_batch < 1 || max_pending < 1
     || max_conns < 1
  then begin
    prerr_endline "serve: shards/io-domains/counters/queue/batch/pending/\
                   max-conns must be positive and k >= 2";
    2
  end
  else if nodes < 1 || node_id < 0 || node_id >= nodes || replicas < 1
          || gossip_interval_ms < 1 || k_staleness < 1
          || digest_interval_ticks < 1
  then begin
    prerr_endline "serve: need nodes >= 1, node-id in 0..nodes-1, \
                   replicas >= 1, gossip-interval-ms >= 1, \
                   k-staleness >= 1 and digest-interval-ticks >= 1";
    2
  end
  else if snapshot_interval_ms < 0 then begin
    prerr_endline "serve: snapshot-interval-ms must be >= 0 (0 disables)";
    2
  end
  else if not (check_poller "serve" poller) then 2
  else begin
    match parse_fsync fsync_spec with
    | None ->
      Printf.eprintf
        "serve: malformed --fsync %S (expected never, interval-ms:N or \
         every-n-records:N)\n"
        fsync_spec;
      2
    | Some fsync ->
    match parse_peers peers_spec with
    | None ->
      Printf.eprintf
        "serve: malformed --peers %S (expected ID=HOST:PORT or \
         ID=UNIX_PATH, comma-separated)\n"
        peers_spec;
      2
    | Some peers ->
    if gossip_wire_spec <> "compact" && gossip_wire_spec <> "legacy" then begin
      Printf.eprintf
        "serve: malformed --gossip-wire %S (expected compact or legacy)\n"
        gossip_wire_spec;
      2
    end
    else
    let config =
      { Service.Server.shards;
        io_domains;
        queue_capacity;
        max_batch;
        max_pending;
        max_conns;
        poller;
        specs = Service.Objects.default_specs ~counters ~k;
        node_id;
        nodes;
        replicas;
        gossip_interval_ms;
        k_staleness;
        digest_interval_ticks;
        gossip_wire =
          (if gossip_wire_spec = "legacy" then `Legacy else `Compact);
        peers;
        data_dir = (if data_dir = "" then None else Some data_dir);
        fsync;
        snapshot_interval_ms;
        wal_every_op = false }
    in
    let listen =
      match tcp with
      | Some port -> `Tcp ("127.0.0.1", port)
      | None -> `Unix unix
    in
    let srv = Service.Server.start ~config ~listen () in
    (* start already lifted soft -> hard; warn when even the hard
       limit cannot cover max_conns plus listener/wake/stdio slack. *)
    let soft, hard = Service.Rlimit.nofile () in
    let headroom = 64 + (2 * io_domains) in
    if hard < max_conns + headroom then
      Printf.eprintf
        "serve: warning: RLIMIT_NOFILE hard limit %d < max-conns %d + %d \
         headroom; accepts beyond ~%d fds will fail\n%!"
        hard max_conns headroom (soft - headroom);
    let addr =
      match Service.Server.sockaddr srv with
      | Unix.ADDR_UNIX p -> p
      | Unix.ADDR_INET (host, port) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port
    in
    Printf.printf "serving %d objects on %s: %d shard(s), %d io domain(s), \
                   batch<=%d, queue=%d, pending<=%d, conns<=%d, poller=%s\n%!"
      (List.length config.specs) addr shards io_domains max_batch
      queue_capacity max_pending max_conns
      (Service.Server.poller_name srv);
    if nodes > 1 then
      Printf.printf
        "cluster: node %d of %d, replicas=%d, gossip every %d ms, \
         k-staleness=%d, %d peer(s)\n%!"
        node_id nodes replicas gossip_interval_ms k_staleness
        (List.length peers);
    (match config.data_dir with
    | Some dir ->
      let d = Service.Metrics.durability (Service.Server.metrics srv) in
      Printf.printf
        "durability: data-dir=%s, fsync=%s, snapshots every %d ms; \
         recovered %d log record(s), snapshot %s%s\n%!"
        dir
        (Persist.Wal.policy_to_string fsync)
        snapshot_interval_ms
        d.Service.Metrics.d_recovery_replayed_records
        (if d.Service.Metrics.d_recovery_snapshot_loaded then "loaded"
         else "absent")
        (if d.Service.Metrics.d_torn_tail_truncated > 0 then
           ", torn tail truncated"
         else "")
    | None -> ());
    let stop = ref false in
    let handler = Sys.Signal_handle (fun _ -> stop := true) in
    Sys.set_signal Sys.sigint handler;
    Sys.set_signal Sys.sigterm handler;
    let deadline =
      if duration > 0.0 then Unix.gettimeofday () +. duration else infinity
    in
    while (not !stop) && Unix.gettimeofday () < deadline do
      try Unix.sleepf 0.1 with Unix.Unix_error (EINTR, _, _) -> ()
    done;
    Service.Server.stop srv;
    0
  end

let serve_cmd =
  let queue_arg =
    Arg.(value & opt int 1024
         & info [ "queue" ] ~docv:"Q" ~doc:"Per-shard task-queue bound.")
  in
  let batch_arg =
    Arg.(value & opt int 64
         & info [ "batch" ] ~docv:"B"
             ~doc:"Max tasks one shard wakeup drains.")
  in
  let pending_arg =
    Arg.(value & opt int 256
         & info [ "pending" ] ~docv:"P"
             ~doc:"Per-connection in-flight request bound (beyond it \
                   the server answers BUSY).")
  in
  let shards_arg =
    Arg.(value & opt int 2
         & info [ "shards" ] ~docv:"S" ~doc:"Worker domains.")
  in
  let io_domains_arg =
    Arg.(value & opt int 1
         & info [ "io-domains" ] ~docv:"D"
             ~doc:"Event-loop domains; connections are dealt to them \
                   round-robin at accept.")
  in
  let duration_arg =
    Arg.(value & opt float 0.0
         & info [ "duration" ] ~docv:"SECS"
             ~doc:"Exit after $(docv) seconds (0 = run until SIGINT).")
  in
  let max_conns_arg =
    Arg.(value & opt int 1024
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Accepted connections beyond $(docv) are closed \
                   immediately; also sizes the listen backlog.")
  in
  let node_id_arg =
    Arg.(value & opt int 0
         & info [ "node-id" ] ~docv:"ID"
             ~doc:"This node's id in the cluster (0-based).")
  in
  let nodes_arg =
    Arg.(value & opt int 1
         & info [ "nodes" ] ~docv:"N"
             ~doc:"Cluster size; every node must agree on $(docv) (1 = \
                   standalone, no gossip).")
  in
  let replicas_arg =
    Arg.(value & opt int 1
         & info [ "replicas" ] ~docv:"R"
             ~doc:"Copies of each object on the placement ring (clamped \
                   to the node count).")
  in
  let gossip_arg =
    Arg.(value & opt int 50
         & info [ "gossip-interval-ms" ] ~docv:"MS"
             ~doc:"Delta-gossip cadence toward the peers.")
  in
  let k_staleness_arg =
    Arg.(value & opt int 2
         & info [ "staleness" ] ~docv:"KS"
             ~doc:"Staleness budget: local growth past this factor since \
                   the last export triggers eager gossip; the cluster \
                   accuracy bound is k x $(docv).")
  in
  let digest_interval_arg =
    Arg.(value & opt int 32
         & info [ "digest-interval-ticks" ] ~docv:"T"
             ~doc:"Anti-entropy cadence: ship per-object digest \
                   fingerprints to every peer each $(docv) gossip \
                   ticks (plus one on every reconnect). In legacy \
                   wire mode this is the full-state sync period.")
  in
  let gossip_wire_arg =
    Arg.(value & opt string "compact"
         & info [ "gossip-wire" ] ~docv:"WIRE"
             ~doc:"Peer wire encoding: $(b,compact) (varint deltas, \
                   digest anti-entropy, coalesced frames) or \
                   $(b,legacy) (protocol-2 fixed-width acked frames, \
                   for bandwidth A/B runs).")
  in
  let peers_arg =
    Arg.(value & opt string ""
         & info [ "peers" ] ~docv:"ID=ADDR,..."
             ~doc:"Peer nodes as $(b,ID=HOST:PORT) or $(b,ID=UNIX_PATH), \
                   comma-separated (every node except this one).")
  in
  let data_dir_arg =
    Arg.(value & opt string ""
         & info [ "data-dir" ] ~docv:"DIR"
             ~doc:"Durability root: replay $(docv)'s snapshot + delta log \
                   at start, then log envelope-crossing deltas and write \
                   periodic fuzzy snapshots into it. Empty = no \
                   persistence.")
  in
  let fsync_arg =
    Arg.(value & opt string "never"
         & info [ "fsync" ] ~docv:"POLICY"
             ~doc:"WAL fsync policy: $(b,never), $(b,interval-ms:N) or \
                   $(b,every-n-records:N). Unsynced data still survives \
                   kill -9 (page cache); fsync narrows the power-loss \
                   window.")
  in
  let snapshot_arg =
    Arg.(value & opt int 1000
         & info [ "snapshot-interval-ms" ] ~docv:"MS"
             ~doc:"Fuzzy-snapshot cadence (0 disables periodic snapshots; \
                   the shutdown snapshot still runs).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Host approximate objects behind the binary wire protocol \
             (sharded multi-domain server with built-in metrics and \
             optional delta-gossip clustering)")
    Term.(const run_serve $ shards_arg $ io_domains_arg $ queue_arg
          $ batch_arg $ pending_arg $ max_conns_arg $ poller_arg $ unix_arg
          $ tcp_arg $ counters_arg $ k_arg $ duration_arg $ node_id_arg
          $ nodes_arg $ replicas_arg $ gossip_arg $ k_staleness_arg
          $ digest_interval_arg $ gossip_wire_arg
          $ peers_arg $ data_dir_arg $ fsync_arg $ snapshot_arg)

(* --mix R:I:A — relative read:inc:add weights, normalized to permille
   (e.g. 8:1:1 is 800 reads, 100 incs, 100 adds per 1000 ops). *)
let parse_mix s =
  match String.split_on_char ':' s with
  | [ r; i; a ] ->
    (match (int_of_string_opt r, int_of_string_opt i, int_of_string_opt a) with
     | Some r, Some i, Some a when r >= 0 && i >= 0 && a >= 0 && r + i + a > 0
       ->
       let total = r + i + a in
       Some (r * 1000 / total, a * 1000 / total)
     | _ -> None)
  | _ -> None

(* --nodes ADDR,ADDR,... — cluster node addresses in node-id order;
   each is HOST:PORT or a Unix-socket path. Empty = the single address
   from --unix/--tcp. *)
let parse_node_addrs s =
  let parse_one a =
    match String.rindex_opt a ':' with
    | Some colon
      when (match
              int_of_string_opt
                (String.sub a (colon + 1) (String.length a - colon - 1))
            with
           | Some p -> p > 0
           | None -> false) ->
      let host = String.sub a 0 colon in
      let port =
        int_of_string (String.sub a (colon + 1) (String.length a - colon - 1))
      in
      (try Some (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
       with Failure _ -> None)
    | _ -> if a = "" then None else Some (Unix.ADDR_UNIX a)
  in
  if s = "" then Some []
  else
    let parsed = List.map parse_one (String.split_on_char ',' s) in
    if List.exists Option.is_none parsed then None
    else Some (List.map Option.get parsed)

(* The first ["key": N] in a JSON blob — enough to lift a server-
   stanza aggregate out of STATS without a parser. The server stanza
   precedes the per-loop records in [Metrics.to_json], so the first
   occurrence of a duplicated key is the cross-loop sum. *)
let scan_json_int json key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat and jlen = String.length json in
  let rec find i =
    if i + plen > jlen then None
    else if String.sub json i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let j = ref i in
    while !j < jlen && json.[!j] = ' ' do incr j done;
    let s = !j in
    if !j < jlen && json.[!j] = '-' then incr j;
    while !j < jlen && json.[!j] >= '0' && json.[!j] <= '9' do incr j done;
    int_of_string_opt (String.sub json s (!j - s))

let run_loadgen unix tcp connections ops pipeline read_permille mix add_delta
    targets zipf seed workers ramp poller min_throughput slo_p99_us nodes_spec
    replicas max_reconnects json =
  let mix_permilles =
    match mix with
    | None -> Some (read_permille, 0)
    | Some s -> parse_mix s
  in
  match mix_permilles with
  | None ->
    Printf.eprintf
      "loadgen: malformed --mix %S (expected READ:INC:ADD, nonnegative \
       integers, not all zero)\n"
      (Option.value mix ~default:"");
    2
  | Some (read_permille, add_permille) ->
  match parse_node_addrs nodes_spec with
  | None ->
    Printf.eprintf
      "loadgen: malformed --nodes %S (expected HOST:PORT or UNIX_PATH, \
       comma-separated, node-id order)\n"
      nodes_spec;
    2
  | Some node_addrs ->
  let addrs =
    match node_addrs with [] -> [ addr_of ~unix ~tcp ] | l -> l
  in
  let cfg =
    { Service.Loadgen.default_config with
      connections;
      ops_per_connection = ops;
      pipeline;
      read_permille;
      add_permille;
      add_delta;
      zipf_s = zipf;
      seed;
      workers;
      ramp_conns_per_tick = ramp;
      poller;
      replicas;
      max_reconnects }
  in
  let cfg =
    match targets with [] -> cfg | ts -> { cfg with targets = ts }
  in
  if connections < 1 || ops < 1 || pipeline < 1 || read_permille < 0
     || read_permille > 1000 || add_delta < 0 || workers < 0 || ramp < 0
     || replicas < 1 || max_reconnects < 0
  then begin
    prerr_endline "loadgen: connections/ops/pipeline/replicas must be \
                   positive, read-permille in 0..1000 and workers/ramp/\
                   add-delta/max-reconnects >= 0";
    2
  end
  else if not (Float.is_finite zipf) || zipf < 0.0 then begin
    prerr_endline "loadgen: --zipf must be a finite exponent >= 0";
    2
  end
  else if not (check_poller "loadgen" poller) then 2
  else begin
    match Service.Loadgen.run ~addrs cfg with
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "loadgen: cannot reach the service: %s\n"
        (Unix.error_message e);
      1
    | r ->
    let open Service.Loadgen in
    if json then begin
      (* The name-intern counters live server-side: fetch STATS once
         after the run so the JSON record carries the cache's hit rate
         next to the client-side throughput it helped produce. -1 =
         the post-run fetch failed (server already gone). *)
      let scrape =
        match Service.Client.connect (List.hd addrs) with
        | exception Unix.Unix_error _ -> fun _ -> -1
        | client ->
          let stats = Service.Client.stats_json client in
          Service.Client.close client;
          fun key -> Option.value (scan_json_int stats key) ~default:(-1)
      in
      let intern_hits = scrape "intern_hits"
      and intern_misses = scrape "intern_misses"
      (* Peer-bandwidth aggregates (schema-9 comms bench): -1 when the
         post-run STATS fetch failed or the server predates them. *)
      and gossip_bytes_sent = scrape "gossip_bytes_sent"
      and gossip_bytes_suppressed = scrape "gossip_bytes_suppressed"
      and gossip_digest_rounds = scrape "gossip_digest_rounds"
      and gossip_repair_objects = scrape "gossip_repair_objects" in
      let module J = Mcore.Bench_json in
      print_endline
        (J.to_string
           (J.Obj
              [ ("connections", J.Int connections);
                ("ops_per_connection", J.Int ops);
                ("pipeline", J.Int pipeline);
                ("zipf_s", J.Float zipf);
                ("ok", J.Int r.ok);
                ("busy", J.Int r.busy);
                ("errors", J.Int r.errors);
                ("reconnects", J.Int r.reconnects);
                ("elapsed_s", J.Float r.elapsed_s);
                ("ops_per_sec", J.Float r.ops_per_sec);
                ("p50_ns", J.Int r.p50_ns);
                ("p95_ns", J.Int r.p95_ns);
                ("p99_ns", J.Int r.p99_ns);
                ("max_ns", J.Int r.max_ns);
                ("intern_hits", J.Int intern_hits);
                ("intern_misses", J.Int intern_misses);
                ("gossip_bytes_sent", J.Int gossip_bytes_sent);
                ("gossip_bytes_suppressed", J.Int gossip_bytes_suppressed);
                ("gossip_digest_rounds", J.Int gossip_digest_rounds);
                ("gossip_repair_objects", J.Int gossip_repair_objects) ]))
    end
    else begin
      Printf.printf
        "loadgen: %d conn x %d ops (window %d): %d ok, %d busy, %d errors, \
         %d reconnects\n"
        connections ops pipeline r.ok r.busy r.errors r.reconnects;
      Printf.printf
        "throughput %.0f ops/s, latency p50 %d ns, p95 %d ns, p99 %d ns, \
         max %d ns\n"
        r.ops_per_sec r.p50_ns r.p95_ns r.p99_ns r.max_ns
    end;
    if r.errors > 0 then 1
    else
      let floor_failed =
        match min_throughput with
        | Some floor when r.ops_per_sec < floor ->
          Printf.eprintf
            "loadgen: throughput floor FAILED: %.0f < %.0f ops/s\n"
            r.ops_per_sec floor;
          true
        | _ -> false
      in
      let slo_failed =
        match slo_p99_us with
        | Some budget_us when r.p99_ns > budget_us * 1000 ->
          Printf.eprintf
            "loadgen: p99 SLO FAILED: %d ns > %d us\n" r.p99_ns budget_us;
          true
        | _ -> false
      in
      if floor_failed || slo_failed then 1 else 0
  end

let loadgen_cmd =
  let connections_arg =
    Arg.(value & opt int 4
         & info [ "connections" ] ~docv:"C" ~doc:"Client connections (domains).")
  in
  let ops_arg =
    Arg.(value & opt int 10_000
         & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per connection.")
  in
  let pipeline_arg =
    Arg.(value & opt int 8
         & info [ "pipeline" ] ~docv:"W"
             ~doc:"In-flight request window per connection.")
  in
  let rp_arg =
    Arg.(value & opt int 200
         & info [ "read-permille" ] ~docv:"RP"
             ~doc:"Reads per 1000 operations; the rest increment. \
                   Overridden by $(b,--mix).")
  in
  let mix_arg =
    Arg.(value & opt (some string) None
         & info [ "mix" ] ~docv:"R:I:A"
             ~doc:"Relative read:inc:add weights, normalized to permille \
                   (e.g. $(b,8:1:1) is 800 reads, 100 unit INCs and 100 \
                   bulk ADDs per 1000 ops). Takes precedence over \
                   $(b,--read-permille).")
  in
  let add_delta_arg =
    Arg.(value & opt int 16
         & info [ "add-delta" ] ~docv:"D"
             ~doc:"Delta carried by each bulk ADD issued via $(b,--mix).")
  in
  let targets_arg =
    Arg.(value & opt (list string) []
         & info [ "targets" ] ~docv:"NAME,..."
             ~doc:"Counter objects to drive (default c0,c1,c2,c3).")
  in
  let zipf_arg =
    Arg.(value & opt float 0.0
         & info [ "zipf" ] ~docv:"S"
             ~doc:"Zipf exponent for target popularity: 0 (default) picks \
                   targets uniformly; $(docv) > 0 skews the seeded draw so \
                   the first target is the hot key ($(b,1.0) is classic \
                   Zipf, larger is hotter).")
  in
  let min_throughput_arg =
    Arg.(value & opt (some float) None
         & info [ "min-throughput" ] ~docv:"OPS_PER_SEC"
             ~doc:"Exit 1 unless the measured throughput reaches $(docv) \
                   — the CI regression probe against a committed BENCH \
                   record.")
  in
  let slo_p99_arg =
    Arg.(value & opt (some int) None
         & info [ "slo-p99-us" ] ~docv:"US"
             ~doc:"Exit 1 when the measured p99 latency exceeds $(docv) \
                   microseconds — a latency SLO gate for scripted runs.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the result as a JSON object on stdout instead of \
                   the two-line summary.")
  in
  let workers_arg =
    Arg.(value & opt int 0
         & info [ "client-workers" ] ~docv:"W"
             ~doc:"Multiplexer domains driving the connections (0 = \
                   min(connections, 4)).")
  in
  let ramp_arg =
    Arg.(value & opt int 0
         & info [ "ramp-conns-per-tick" ] ~docv:"R"
             ~doc:"Pace connection establishment: at most $(docv) new \
                   connections per ~1ms tick across all workers (0 = \
                   connect as fast as possible).")
  in
  let nodes_arg =
    Arg.(value & opt string ""
         & info [ "nodes" ] ~docv:"ADDR,..."
             ~doc:"Cluster node addresses in node-id order \
                   ($(b,HOST:PORT) or $(b,UNIX_PATH)); overrides \
                   $(b,--unix)/$(b,--tcp) and enables placement-aware \
                   routing with failover.")
  in
  let replicas_arg =
    Arg.(value & opt int 1
         & info [ "replicas" ] ~docv:"R"
             ~doc:"The cluster's replica count — must match the servers' \
                   so the derived placement ring is identical.")
  in
  let max_reconnects_arg =
    Arg.(value & opt int 0
         & info [ "max-reconnects" ] ~docv:"N"
             ~doc:"Transport-failure reconnects allowed per connection \
                   before it counts as an error (failing over across \
                   nodes in cluster mode).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Run the closed-loop load generator against a running \
             service and report throughput and latency percentiles")
    Term.(const run_loadgen $ unix_arg $ tcp_arg $ connections_arg $ ops_arg
          $ pipeline_arg $ rp_arg $ mix_arg $ add_delta_arg $ targets_arg
          $ zipf_arg $ seed_arg $ workers_arg $ ramp_arg $ poller_arg
          $ min_throughput_arg $ slo_p99_arg $ nodes_arg $ replicas_arg
          $ max_reconnects_arg $ json_arg)

let run_stats unix tcp =
  match Service.Client.connect (addr_of ~unix ~tcp) with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "stats: cannot reach the service: %s\n"
      (Unix.error_message e);
    1
  | client ->
    let json = Service.Client.stats_json client in
    Service.Client.close client;
    print_string json;
    0

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Fetch a running service's metrics registry (op counters, \
             latency histograms, accuracy self-checks) as JSON")
    Term.(const run_stats $ unix_arg $ tcp_arg)

(* ------------------------------------------------------------------ *)

let commands =
  [ counter_cmd; maxreg_cmd; lincheck_cmd; awareness_cmd; perturb_cmd;
    explore_cmd; backends_cmd; bench_cmd; serve_cmd; loadgen_cmd; stats_cmd ]

let usage_to_stderr () =
  prerr_endline "usage: approx_cli COMMAND [OPTION]...";
  prerr_endline "commands:";
  List.iter
    (fun cmd -> Printf.eprintf "  %s\n" (Cmd.name cmd))
    commands;
  prerr_endline "run 'approx_cli COMMAND --help' for details"

let () =
  (* A dead server end must surface as EPIPE on the write (loadgen
     reconnects, one-shot clients report the error) — not kill the
     process. Signal disposition is process-global state, so it is set
     here at the binary entry; the library modules never touch it. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* An unknown (or missing) subcommand prints usage to stderr and
     exits 2 — not cmdliner's generic CLI-error status. Unambiguous
     command prefixes still reach cmdliner's own resolution. *)
  let known name =
    List.exists
      (fun cmd -> String.starts_with ~prefix:name (Cmd.name cmd))
      commands
  in
  let bad_invocation =
    if Array.length Sys.argv < 2 then true
    else
      let a = Sys.argv.(1) in
      String.length a > 0 && a.[0] <> '-' && not (known a)
  in
  if bad_invocation then begin
    (if Array.length Sys.argv >= 2 then
       Printf.eprintf "approx_cli: unknown command '%s'\n" Sys.argv.(1)
     else prerr_endline "approx_cli: missing command");
    usage_to_stderr ();
    exit 2
  end;
  let doc = "deterministic approximate objects (ICDCS 2021) playground" in
  let info = Cmd.info "approx_cli" ~version:"1.9.0" ~doc in
  exit (Cmd.eval' (Cmd.group info commands))
