(* Command-line driver for the simulated objects: run workloads, dump
   traces, check linearizability, and run the lower-bound experiments
   without writing any OCaml.

   Examples:
     approx_cli counter --impl k --n 8 --k 3 --ops 1000 --read-fraction 0.2
     approx_cli maxreg --impl k --m 65536 --writes 50 --trace
     approx_cli lincheck --n 3 --k 2 --ops 5 --seed 11
     approx_cli awareness --n 64 --k 2
     approx_cli perturb --object maxreg --m 1048576 --k 2
*)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument definitions                                         *)
(* ------------------------------------------------------------------ *)

let n_arg =
  Arg.(value & opt int 4 & info [ "n"; "procs" ] ~docv:"N" ~doc:"Number of processes.")

let k_arg =
  Arg.(value & opt int 2 & info [ "k"; "acc" ] ~docv:"K"
         ~doc:"Accuracy parameter of the k-multiplicative objects.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Deterministic seed for workload and schedule.")

let policy_arg =
  let policy = Arg.enum [ ("round-robin", `Round_robin); ("random", `Random) ] in
  Arg.(value & opt policy `Random
       & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Scheduling policy: $(b,round-robin) or $(b,random).")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Dump the full execution trace.")

let dump_events_arg =
  Arg.(value & opt (some string) None
       & info [ "dump-events" ] ~docv:"FILE"
           ~doc:"Export the event trace to $(docv) (.csv or .json by \
                 extension).")

let dump_ops_arg =
  Arg.(value & opt (some string) None
       & info [ "dump-ops" ] ~docv:"FILE"
           ~doc:"Export per-operation metrics to $(docv) as CSV.")

let export_dumps exec ~dump_events ~dump_ops =
  let mem = Sim.Exec.memory exec in
  let trace = Sim.Exec.trace exec in
  (match dump_events with
   | None -> ()
   | Some path ->
     let emit =
       if Filename.check_suffix path ".json" then Sim.Export.events_json mem
       else Sim.Export.events_csv mem
     in
     Sim.Export.write_file path (emit trace);
     Printf.printf "events written to %s\n" path);
  match dump_ops with
  | None -> ()
  | Some path ->
    Sim.Export.write_file path (Sim.Export.ops_csv trace);
    Printf.printf "operation metrics written to %s\n" path

let make_policy policy seed =
  match policy with
  | `Round_robin -> Sim.Schedule.Round_robin
  | `Random -> Sim.Schedule.Random seed

let print_metrics trace =
  Printf.printf "operations:\n";
  List.iter
    (fun (name, count, worst, mean) ->
      Printf.printf "  %-8s count=%-7d worst-steps=%-5d mean-steps=%.2f\n" name
        count worst mean)
    (Sim.Metrics.by_name trace);
  Printf.printf "total steps: %d, amortized steps/op: %.3f\n"
    (Sim.Trace.steps trace)
    (Sim.Metrics.amortized trace)

(* ------------------------------------------------------------------ *)
(* counter subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let counter_impl_arg =
  let impl =
    Arg.enum
      [ ("k", `K); ("collect", `Collect); ("tree", `Tree);
        ("snapshot", `Snapshot); ("faa", `Faa) ]
  in
  Arg.(value & opt impl `K
       & info [ "impl" ] ~docv:"IMPL"
           ~doc:"Counter implementation: $(b,k) (Algorithm 1), \
                 $(b,collect), $(b,tree), $(b,snapshot) or $(b,faa).")

let make_counter impl exec ~n ~k =
  match impl with
  | `K -> Approx.Kcounter.handle (Approx.Kcounter.create exec ~n ~k ())
  | `Collect ->
    Counters.Collect_counter.handle (Counters.Collect_counter.create exec ~n ())
  | `Tree -> Counters.Tree_counter.handle (Counters.Tree_counter.create exec ~n ())
  | `Snapshot ->
    Counters.Snapshot_counter.handle
      (Counters.Snapshot_counter.create exec ~n ())
  | `Faa -> Counters.Faa_counter.handle (Counters.Faa_counter.create exec ())

let run_counter impl n k ops read_fraction seed policy trace dump_events
    dump_ops =
  let exec = Sim.Exec.create ~n () in
  let counter = make_counter impl exec ~n ~k in
  let script =
    Workload.Script.counter_mix ~seed ~n ~ops_per_process:ops ~read_fraction
  in
  let reads = ref [] in
  let programs =
    Workload.Script.counter_programs
      ~on_read:(fun ~pid result -> reads := (pid, result) :: !reads)
      counter script
  in
  let outcome =
    Sim.Exec.run exec ~programs ~policy:(make_policy policy seed) ()
  in
  Printf.printf "%s: n=%d ops/process=%d -> %d reads, %d steps\n"
    counter.Obj_intf.c_label n ops
    (List.length !reads)
    outcome.steps_total;
  (match List.rev !reads with
   | [] -> ()
   | (pid, first) :: _ ->
     Printf.printf "first read: p%d -> %d; last read: %s\n" pid first
       (match !reads with
        | (pid, last) :: _ -> Printf.sprintf "p%d -> %d" pid last
        | [] -> "-"));
  print_metrics (Sim.Exec.trace exec);
  if trace then Format.printf "%a" Sim.Trace.pp (Sim.Exec.trace exec);
  export_dumps exec ~dump_events ~dump_ops;
  0

let counter_cmd =
  let ops_arg =
    Arg.(value & opt int 1000
         & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per process.")
  in
  let rf_arg =
    Arg.(value & opt float 0.2
         & info [ "read-fraction" ] ~docv:"F"
             ~doc:"Fraction of operations that are reads.")
  in
  Cmd.v
    (Cmd.info "counter" ~doc:"Run a counter workload in the simulator")
    Term.(const run_counter $ counter_impl_arg $ n_arg $ k_arg $ ops_arg
          $ rf_arg $ seed_arg $ policy_arg $ trace_arg $ dump_events_arg
          $ dump_ops_arg)

(* ------------------------------------------------------------------ *)
(* maxreg subcommand                                                   *)
(* ------------------------------------------------------------------ *)

let maxreg_impl_arg =
  let impl =
    Arg.enum
      [ ("k", `K); ("tree", `Tree); ("linear", `Linear);
        ("unbounded", `Unbounded); ("k-unbounded", `Kunbounded) ]
  in
  Arg.(value & opt impl `K
       & info [ "impl" ] ~docv:"IMPL"
           ~doc:"Max-register implementation: $(b,k) (Algorithm 2), \
                 $(b,tree), $(b,linear), $(b,unbounded) or \
                 $(b,k-unbounded).")

let make_maxreg impl exec ~n ~m ~k =
  match impl with
  | `K -> Approx.Kmaxreg.handle (Approx.Kmaxreg.create exec ~n ~m ~k ())
  | `Tree -> Maxreg.Tree_maxreg.handle (Maxreg.Tree_maxreg.create exec ~m ())
  | `Linear -> Maxreg.Linear_maxreg.handle (Maxreg.Linear_maxreg.create exec ~n ())
  | `Unbounded ->
    Maxreg.Unbounded_maxreg.handle (Maxreg.Unbounded_maxreg.create exec ())
  | `Kunbounded ->
    Approx.Kmaxreg_unbounded.handle (Approx.Kmaxreg_unbounded.create exec ~k ())

let run_maxreg impl n m k writes seed policy trace dump_events dump_ops =
  let exec = Sim.Exec.create ~n () in
  let mr = make_maxreg impl exec ~n ~m ~k in
  let script =
    Workload.Script.writes_then_read ~seed ~n ~writes_per_process:writes
      ~max_value:m
  in
  let reads = ref [] in
  let programs =
    Workload.Script.maxreg_programs
      ~on_read:(fun ~pid result -> reads := (pid, result) :: !reads)
      mr script
  in
  let outcome =
    Sim.Exec.run exec ~programs ~policy:(make_policy policy seed) ()
  in
  Printf.printf "%s: n=%d m=%d -> %d steps\n" mr.Obj_intf.mr_label n m
    outcome.steps_total;
  List.iter
    (fun (pid, x) -> Printf.printf "read by p%d -> %d\n" pid x)
    (List.rev !reads);
  print_metrics (Sim.Exec.trace exec);
  if trace then Format.printf "%a" Sim.Trace.pp (Sim.Exec.trace exec);
  export_dumps exec ~dump_events ~dump_ops;
  0

let maxreg_cmd =
  let m_arg =
    Arg.(value & opt int 65536
         & info [ "m"; "bound" ] ~docv:"M" ~doc:"Value bound (bounded registers).")
  in
  let writes_arg =
    Arg.(value & opt int 20
         & info [ "writes" ] ~docv:"W" ~doc:"Writes per process.")
  in
  Cmd.v
    (Cmd.info "maxreg" ~doc:"Run a max-register workload in the simulator")
    Term.(const run_maxreg $ maxreg_impl_arg $ n_arg $ m_arg $ k_arg
          $ writes_arg $ seed_arg $ policy_arg $ trace_arg $ dump_events_arg
          $ dump_ops_arg)

(* ------------------------------------------------------------------ *)
(* lincheck subcommand                                                 *)
(* ------------------------------------------------------------------ *)

let run_lincheck n k ops seed =
  let exec = Sim.Exec.create ~n () in
  let counter = Approx.Kcounter.create exec ~n ~k () in
  let script =
    Workload.Script.counter_mix ~seed ~n ~ops_per_process:ops
      ~read_fraction:0.5
  in
  let programs =
    Workload.Script.counter_programs (Approx.Kcounter.handle counter) script
  in
  ignore (Sim.Exec.run exec ~programs ~policy:(Sim.Schedule.Random seed) ());
  let ops_arr = Lincheck.History.of_trace (Sim.Exec.trace exec) in
  Array.iter
    (fun op -> Format.printf "%a@." Lincheck.History.pp_op op)
    ops_arr;
  print_newline ();
  print_string (Lincheck.Render.timeline (Sim.Exec.trace exec));
  match Lincheck.Checker.check (Lincheck.Spec.k_counter ~k) ops_arr with
  | Lincheck.Checker.Linearizable witness ->
    Printf.printf "linearizable (witness: %s)\n"
      (String.concat " " (List.map string_of_int witness));
    0
  | Lincheck.Checker.Not_linearizable ->
    Printf.printf "NOT LINEARIZABLE\n";
    1

let lincheck_cmd =
  let ops_arg =
    Arg.(value & opt int 4
         & info [ "ops" ] ~docv:"OPS"
             ~doc:"Operations per process (keep small; the check is \
                   exponential).")
  in
  Cmd.v
    (Cmd.info "lincheck"
       ~doc:"Run Algorithm 1 under a random schedule and check \
             linearizability against the k-counter specification")
    Term.(const run_lincheck $ n_arg $ k_arg $ ops_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* awareness subcommand                                                *)
(* ------------------------------------------------------------------ *)

let run_awareness n k seed =
  let result =
    Lowerbound.Awareness_exp.run
      ~make:(fun exec ~n ->
        Approx.Kcounter.handle (Approx.Kcounter.create exec ~n ~k ()))
      ~n ~k
      ~policy:(Sim.Schedule.Random seed)
  in
  Printf.printf
    "n=%d k=%d: %d events (Thm III.11 bound ~ %.0f), top-half awareness %d \
     (Cor III.10.1 bound %.1f)\n"
    n k result.total_events result.events_bound result.top_half_min
    result.awareness_bound;
  0

let awareness_cmd =
  Cmd.v
    (Cmd.info "awareness"
       ~doc:"Run the inc-then-read workload with awareness tracking \
             (Section III-D)")
    Term.(const run_awareness $ n_arg $ k_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* perturb subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let run_perturb obj m k =
  let rounds =
    match obj with
    | `Maxreg ->
      Lowerbound.Perturb.perturb_maxreg
        ~make:(fun exec ~n ->
          Approx.Kmaxreg.handle (Approx.Kmaxreg.create exec ~n ~m ~k ()))
        ~m ~k
    | `Counter ->
      Lowerbound.Perturb.perturb_counter
        ~make:(fun exec ~n ->
          Approx.Kcounter.handle (Approx.Kcounter.create exec ~n ~k ()))
        ~m ~k
  in
  Printf.printf "%-6s %-14s %-14s %-8s %s\n" "round" "input" "response"
    "objects" "steps";
  List.iter
    (fun r ->
      Printf.printf "%-6d %-14d %-14d %-8d %d\n" r.Lowerbound.Perturb.index
        r.Lowerbound.Perturb.input r.Lowerbound.Perturb.response
        r.Lowerbound.Perturb.distinct_objects r.Lowerbound.Perturb.read_steps)
    rounds;
  0

let perturb_cmd =
  let obj_arg =
    let obj = Arg.enum [ ("maxreg", `Maxreg); ("counter", `Counter) ] in
    Arg.(value & opt obj `Maxreg
         & info [ "object" ] ~docv:"OBJ"
             ~doc:"Which object to perturb: $(b,maxreg) or $(b,counter).")
  in
  let m_arg =
    Arg.(value & opt int (1 lsl 20)
         & info [ "m"; "bound" ] ~docv:"M" ~doc:"Bound for the perturbation budget.")
  in
  Cmd.v
    (Cmd.info "perturb"
       ~doc:"Run the Section V perturbation adversary against Algorithm 1/2")
    Term.(const run_perturb $ obj_arg $ m_arg $ k_arg)

(* ------------------------------------------------------------------ *)
(* explore subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let run_explore n k incs limit =
  let script =
    Array.init n (fun _ ->
        List.init incs (fun _ -> Workload.Script.Inc) @ [ Workload.Script.Read ])
  in
  let build () =
    let exec = Sim.Exec.create ~n () in
    let counter = Approx.Kcounter.create exec ~n ~k () in
    (exec,
     Workload.Script.counter_programs (Approx.Kcounter.handle counter) script)
  in
  let stats =
    Lincheck.Explore.exhaustive ~build ~spec:(Lincheck.Spec.k_counter ~k)
      ~limit ()
  in
  Printf.printf
    "explored %d complete executions (%d replays, depth <= %d)%s\n"
    stats.Lincheck.Explore.executions stats.Lincheck.Explore.replays
    stats.Lincheck.Explore.max_depth
    (if stats.Lincheck.Explore.truncated then " [truncated]" else "");
  if stats.Lincheck.Explore.violations = 0 then begin
    Printf.printf "all linearizable against the %d-counter specification\n" k;
    0
  end
  else begin
    Printf.printf "%d VIOLATIONS; first witness schedule: %s\n"
      stats.Lincheck.Explore.violations
      (match stats.Lincheck.Explore.first_violation with
       | None -> "-"
       | Some s ->
         String.concat " " (Array.to_list (Array.map string_of_int s)));
    1
  end

let explore_cmd =
  let incs_arg =
    Arg.(value & opt int 2
         & info [ "incs" ] ~docv:"I"
             ~doc:"Increments per process before its final read (keep \
                   small; exploration is exponential).")
  in
  let limit_arg =
    Arg.(value & opt int 200_000
         & info [ "limit" ] ~docv:"L" ~doc:"Maximum executions to explore.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Exhaustively enumerate every interleaving of a small \
             Algorithm 1 configuration and check linearizability")
    Term.(const run_explore $ n_arg $ k_arg $ incs_arg $ limit_arg)

(* ------------------------------------------------------------------ *)
(* backends subcommand                                                 *)
(* ------------------------------------------------------------------ *)

let run_backends seed =
  let rows = Backend_smoke.rows ~seed () in
  Printf.printf "functor smoke matrix: n=%d k=%d incs=%d\n" Backend_smoke.n
    Backend_smoke.k Backend_smoke.incs;
  List.iter
    (fun r ->
      Printf.printf
        "  %-14s counter=%-6d %-3s maxreg=%-6d %-3s pid0-steps=%d\n"
        r.Backend_smoke.backend r.Backend_smoke.counter_read
        (if r.Backend_smoke.counter_ok then "ok" else "BAD")
        r.Backend_smoke.maxreg_read
        (if r.Backend_smoke.maxreg_ok then "ok" else "BAD")
        r.Backend_smoke.steps)
    rows;
  if Backend_smoke.all_ok rows then begin
    print_endline "all backends within the k-multiplicative envelope";
    0
  end
  else begin
    print_endline "ENVELOPE VIOLATION in the backend matrix";
    1
  end

let backends_cmd =
  Cmd.v
    (Cmd.info "backends"
       ~doc:"Drive the functorized Algorithms 1 & 2 through every backend \
             instantiation (sim, chaos(sim), atomic, chaos(atomic)) and \
             check the accuracy envelopes")
    Term.(const run_backends $ seed_arg)

(* ------------------------------------------------------------------ *)
(* bench subcommand                                                    *)
(* ------------------------------------------------------------------ *)

let run_bench trials warmup ops domains out smoke =
  let cfg =
    if smoke then { Perf.Pipeline.smoke_config with out_path = out }
    else
      { Perf.Pipeline.default_config with
        trials;
        warmup_trials = warmup;
        ops_per_domain = ops;
        domains =
          (match domains with
           | [] -> Perf.Pipeline.default_config.domains
           | ds -> ds);
        out_path = out }
  in
  if cfg.trials < 1 || cfg.warmup_trials < 0 || cfg.ops_per_domain < 1
     || List.exists (fun d -> d < 1) cfg.domains
  then begin
    prerr_endline "bench: trials/ops/domains must be positive";
    2
  end
  else begin
    Perf.Pipeline.run cfg;
    0
  end

let bench_cmd =
  let trials_arg =
    Arg.(value & opt int 5
         & info [ "trials" ] ~docv:"T"
             ~doc:"Recorded trials per measurement (min/median/max are \
                   taken over these).")
  in
  let warmup_arg =
    Arg.(value & opt int 1
         & info [ "warmup" ] ~docv:"W"
             ~doc:"Discarded warmup trials per measurement.")
  in
  let ops_arg =
    Arg.(value & opt int 100_000
         & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per domain per trial.")
  in
  let domains_arg =
    Arg.(value & opt (list int) []
         & info [ "domains" ] ~docv:"D,D,..."
             ~doc:"Domain counts to sweep (default: 1,2 plus powers of \
                   two up to the recognized core count).")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_1.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Output JSON path.")
  in
  let smoke_arg =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Run the tiny smoke configuration (fast; for CI).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run the multicore benchmark pipeline and write a BENCH_*.json \
             performance record")
    Term.(const run_bench $ trials_arg $ warmup_arg $ ops_arg $ domains_arg
          $ out_arg $ smoke_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "deterministic approximate objects (ICDCS 2021) playground" in
  let info = Cmd.info "approx_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ counter_cmd; maxreg_cmd; lincheck_cmd; awareness_cmd;
            perturb_cmd; explore_cmd; backends_cmd; bench_cmd ]))
