(* E8: multicore throughput (the Scal-style practical motivation). Real
   domains, real atomics — the counterpart of the simulator's step counts.

   Note: on a single-core container the domain counts time-slice instead
   of running in parallel, so expect flat scaling; the relative ordering
   of implementations (local-increment vs contended-RMW vs lock) is still
   informative. *)

let inc_throughput ~domains ~ops =
  let k = max 2 (Zmath.ceil_sqrt domains) in
  let kc = Mcore.Mc_kcounter.create ~n:domains ~k () in
  let faa = Mcore.Mc_baselines.Faa_counter.create () in
  let col = Mcore.Mc_baselines.Collect_counter.create ~n:domains in
  let lock = Mcore.Mc_baselines.Lock_counter.create () in
  let kadd =
    Mcore.Mc_more_counters.Kadditive.create ~n:domains ~k:(domains * 64) ()
  in
  let tree = Mcore.Mc_more_counters.Tree_counter.create ~n:domains () in
  let measure worker =
    (Mcore.Throughput.run ~domains ~ops_per_domain:ops ~worker).ops_per_sec
    /. 1_000_000.0
  in
  [ ("kcounter", measure (fun ~pid ~op_index:_ ->
         Mcore.Mc_kcounter.increment kc ~pid));
    ("faa", measure (fun ~pid:_ ~op_index:_ ->
         Mcore.Mc_baselines.Faa_counter.increment faa));
    ("collect", measure (fun ~pid ~op_index:_ ->
         Mcore.Mc_baselines.Collect_counter.increment col ~pid));
    ("lock", measure (fun ~pid:_ ~op_index:_ ->
         Mcore.Mc_baselines.Lock_counter.increment lock));
    ("kadditive", measure (fun ~pid ~op_index:_ ->
         Mcore.Mc_more_counters.Kadditive.increment kadd ~pid));
    ("aach-tree", measure (fun ~pid ~op_index:_ ->
         Mcore.Mc_more_counters.Tree_counter.increment tree ~pid)) ]

let maxreg_throughput ~domains ~ops =
  let kmr = Mcore.Mc_kmaxreg.create ~m:(1 lsl 30) ~k:2 () in
  let cas = Mcore.Mc_baselines.Cas_maxreg.create () in
  let measure worker =
    (Mcore.Throughput.run ~domains ~ops_per_domain:ops ~worker).ops_per_sec
    /. 1_000_000.0
  in
  [ ("kmaxreg", measure (fun ~pid ~op_index ->
         Mcore.Mc_kmaxreg.write kmr ((op_index * domains) + pid + 1)));
    ("cas-loop", measure (fun ~pid ~op_index ->
         Mcore.Mc_baselines.Cas_maxreg.write cas
           ((op_index * domains) + pid + 1))) ]

let run () =
  Tables.section
    "E8  Multicore throughput (Mops/s), OCaml domains + Atomic";
  Printf.printf "(host has %d recognized core(s))\n"
    (Domain.recommended_domain_count ());
  let ops = 300_000 in
  let domain_counts = Mcore.Throughput.sweep_domains ~max_domains:4 () in
  let counter_rows =
    List.map
      (fun domains ->
        let results = inc_throughput ~domains ~ops in
        string_of_int domains
        :: List.map (fun (_, mops) -> Tables.fmt_float mops) results)
      domain_counts
  in
  Tables.print_table ~title:"counter increments (Mops/s)"
    ~header:[ "domains"; "kcounter"; "faa"; "collect"; "lock"; "kadditive";
              "aach-tree" ]
    counter_rows;
  let maxreg_rows =
    List.map
      (fun domains ->
        let results = maxreg_throughput ~domains ~ops in
        string_of_int domains
        :: List.map (fun (_, mops) -> Tables.fmt_float mops) results)
      domain_counts
  in
  Tables.print_table ~title:"max-register writes (Mops/s)"
    ~header:[ "domains"; "kmaxreg"; "cas-loop" ]
    maxreg_rows;
  print_endline
    "expected shape: kcounter increments are almost always core-local\n\
     (no shared write), so they track the collect counter and beat faa\n\
     and lock as contention grows; kmaxreg writes touch O(log log m)\n\
     switch bits without retry loops."
