(* perf: the reproducible benchmark pipeline. Unlike the console-only
   tables of the other experiments, this one persists its measurements:
   it writes BENCH_3.json (throughput min/median/max over repeated
   trials for the k-counter and k-max-register vs their exact baselines,
   the slack-aware fast-path ablations, end-to-end service
   throughput/latency through the wire protocol, plus Algorithm 1's
   simulated amortized step metrics) so the perf trajectory of the
   repository is diffable across revisions. See EXPERIMENTS.md,
   "Performance trajectory". *)

let run () =
  Tables.section
    "perf  Benchmark pipeline -> BENCH_3.json (throughput + amortized steps)";
  let cores = Perf.Pipeline.detect_cores () in
  Printf.printf "(host has %d core(s); runtime recognized %d, source %s)\n"
    cores.Perf.Pipeline.effective_cores cores.Perf.Pipeline.raw_cores
    cores.Perf.Pipeline.cores_source;
  ignore (Perf.Pipeline.run Perf.Pipeline.default_config)
