(* perf: the reproducible benchmark pipeline. Unlike the console-only
   tables of the other experiments, this one persists its measurements:
   it writes BENCH_2.json (throughput min/median/max over repeated
   trials for the k-counter and k-max-register vs their exact baselines,
   end-to-end service throughput/latency through the wire protocol, plus
   Algorithm 1's simulated amortized step metrics) so the perf
   trajectory of the repository is diffable across revisions. See
   EXPERIMENTS.md, "Performance trajectory". *)

let run () =
  Tables.section
    "perf  Benchmark pipeline -> BENCH_2.json (throughput + amortized steps)";
  Printf.printf "(host has %d recognized core(s))\n"
    (Domain.recommended_domain_count ());
  Perf.Pipeline.run Perf.Pipeline.default_config
