(* Backend smoke matrix: the same functor bodies (Algorithms 1 and 2 in
   lib/algo) instantiated over every backend — the effects-based
   simulator, the chaos-decorated simulator, hardware atomics, and
   chaos-decorated atomics — driven on one deterministic workload. The
   table shows the quiescent reads and their k-multiplicative envelope
   verdicts; any `no` is a regression in that instantiation. *)

let run () =
  Tables.section "BACKENDS: functor-instantiation smoke matrix";
  let rows = Backend_smoke.rows () in
  Tables.print_table
    ~title:
      (Printf.sprintf
         "Algorithms 1 & 2 across backends (n=%d, k=%d, %d increments)"
         Backend_smoke.n Backend_smoke.k Backend_smoke.incs)
    ~header:
      [ "backend"; "counter read"; "in envelope"; "maxreg read"; "in envelope";
        "pid0 steps" ]
    (List.map
       (fun r ->
         [ r.Backend_smoke.backend;
           string_of_int r.Backend_smoke.counter_read;
           (if r.Backend_smoke.counter_ok then "yes" else "NO");
           string_of_int r.Backend_smoke.maxreg_read;
           (if r.Backend_smoke.maxreg_ok then "yes" else "NO");
           string_of_int r.Backend_smoke.steps ])
       rows);
  if not (Backend_smoke.all_ok rows) then
    failwith "backend smoke matrix: envelope violation"
