(* Experiment harness: regenerates every "table and figure" of the paper.

   The paper is a theory paper (its single figure is an illustration in a
   proof), so each theorem/claim is reproduced as a measured table -- see
   DESIGN.md section 3 for the experiment index and EXPERIMENTS.md for
   paper-vs-measured records.

     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- e1      # just one experiment
     dune exec bench/main.exe -- list    # list experiment ids
*)

let experiments =
  [ ("e1", "amortized counter complexity (Thm III.9)", Exp_amortized.run);
    ("e2", "cost/accuracy vs k (Lemma III.8)", Exp_ksweep.run);
    ("e3", "awareness-set lower bound (Thm III.11)", Exp_awareness.run);
    ("e4", "max-register worst case (Thm IV.2)", Exp_maxreg_wc.run);
    ("e5e6", "perturbation adversaries (Section V)", Exp_perturb.run);
    ("fig1", "switch-interval states (Figure 1)", Exp_fig1.run);
    ("e7", "accuracy envelope and k >= sqrt(n) (Claim III.6)",
     Exp_accuracy.run);
    ("e9e10", "ablations + additive relaxation", Exp_ablation.run);
    ("e11", "exhaustive interleaving exploration", Exp_exhaustive.run);
    ("backends", "functor-instantiation smoke matrix", Exp_backends.run);
    ("mc", "multicore throughput (E8)", Exp_mc.run);
    ("perf", "benchmark pipeline -> BENCH_2.json", Exp_perf.run);
    ("bechamel", "wall-clock microbenchmarks (T1)", Bechamel_suite.run) ]

let list_experiments () =
  List.iter
    (fun (id, doc, _) -> Printf.printf "  %-10s %s\n" id doc)
    experiments

let () =
  match Array.to_list Sys.argv with
  | [ _ ] ->
    Printf.printf
      "Deterministic Approximate Objects: experiment harness\n\
       (run `dune exec bench/main.exe -- list` for individual ids)\n";
    List.iter (fun (_, _, run) -> run ()) experiments
  | [ _; "list" ] -> list_experiments ()
  | _ :: ids ->
    List.iter
      (fun id ->
        match List.find_opt (fun (i, _, _) -> i = id) experiments with
        | Some (_, _, run) -> run ()
        | None ->
          Printf.eprintf "unknown experiment %S; available:\n" id;
          list_experiments ();
          exit 2)
      ids
  | [] -> assert false
